"""Reverse-mode autodiff core: the :class:`Tensor` class and its operations.

Implementation notes
--------------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ndarray) during
  :meth:`Tensor.backward`, which walks the recorded graph in reverse
  topological order.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` sums gradient
  contributions back down to each parent's shape.
* A module-level switch (:func:`no_grad`) disables graph recording for
  inference-time rollouts, which dominate PPO wall-clock — per the
  hpc-parallel optimization guide we keep that hot path allocation-light.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading added axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus the bookkeeping needed for reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = _parents if self.requires_grad or _parents else ()
        self._backward = None
        self.name = name

    # ------------------------------------------------------------- properties
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total element count."""
        return self.data.size

    def item(self) -> float:
        """Extract a Python float from a single-element tensor."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """The raw ndarray (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------ graph build
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    # -------------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return _unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (-grad,)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return _unbroadcast(grad, self.shape), _unbroadcast(-grad, other.shape)

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(b * log(a))")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * exponent * self.data ** (exponent - 1),)

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar
                return grad * b, grad * a
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return grad @ b.T, np.outer(a, grad)
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return np.outer(grad, b), a.T @ grad
            return grad @ b.T, a.T @ grad

        return self._make(out_data, (self, other), backward)

    # -------------------------------------------------------------- reductions
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(ax % self.ndim for ax in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        count = self.size if axis is None else np.prod(
            [self.shape[ax] for ax in ((axis,) if isinstance(axis, int) else axis)]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    # ------------------------------------------------------------ shape manip
    def reshape(self, *shape: int) -> "Tensor":
        """View with a new shape."""
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad.reshape(self.shape),)

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        """Matrix transpose (2-D only)."""
        out_data = self.data.T

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad.T,)

        return self._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return self._make(out_data, (self,), backward)

    # ---------------------------------------------------------------- backward
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor; default seed gradient is ones.

        Typically called on a scalar loss.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        seed = np.ones_like(self.data) if grad is None else np.asarray(grad, dtype=np.float64)
        grads: dict[int, np.ndarray] = {id(self): seed}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                node.grad = node.grad + node_grad
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if not parent.requires_grad or pgrad is None:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


# -------------------------------------------------------------- element-wise
def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> tuple[np.ndarray]:
        return (grad * (1.0 - out_data**2),)

    return x._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = x.data > 0
    out_data = np.where(mask, x.data, 0.0)

    def backward(grad: np.ndarray) -> tuple[np.ndarray]:
        return (grad * mask,)

    return x._make(out_data, (x,), backward)


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> tuple[np.ndarray]:
        return (grad * out_data,)

    return x._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural log."""
    out_data = np.log(x.data)

    def backward(grad: np.ndarray) -> tuple[np.ndarray]:
        return (grad / x.data,)

    return x._make(out_data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    out_data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> tuple[np.ndarray]:
        return (grad * 0.5 / out_data,)

    return x._make(out_data, (x,), backward)


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp to ``[lo, hi]``; gradient is zero outside the active range.

    This matches ``torch.clamp`` semantics, which the paper relies on both
    for the PPO ratio clip and for bounding the learnable log-std.
    """
    mask = (x.data >= lo) & (x.data <= hi)
    out_data = np.clip(x.data, lo, hi)

    def backward(grad: np.ndarray) -> tuple[np.ndarray]:
        return (grad * mask,)

    return x._make(out_data, (x,), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum of two tensors (subgradient: ties go to ``a``)."""
    a, b = Tensor._lift(a), Tensor._lift(b)
    take_a = a.data <= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return (
            _unbroadcast(grad * take_a, a.shape),
            _unbroadcast(grad * ~take_a, b.shape),
        )

    return a._make(out_data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum of two tensors (subgradient: ties go to ``a``)."""
    a, b = Tensor._lift(a), Tensor._lift(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return (
            _unbroadcast(grad * take_a, a.shape),
            _unbroadcast(grad * ~take_a, b.shape),
        )

    return a._make(out_data, (a, b), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition carries no grad."""
    a, b = Tensor._lift(a), Tensor._lift(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return (
            _unbroadcast(grad * cond, a.shape),
            _unbroadcast(grad * ~cond, b.shape),
        )

    return a._make(out_data, (a, b), backward)


def layernorm(x: Tensor, scale: Tensor, shift: Tensor, eps: float = 1e-5) -> Tensor:
    """Fused layer normalization over the last axis (performance primitive).

    Equivalent to composing mean/var/normalize/affine from primitive ops but
    one graph node instead of ~8 — LayerNorm sits inside every policy
    residual block, so this measurably cuts per-episode cost.
    """
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = centered * inv_std
    out_data = xhat * scale.data + shift.data

    def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        dxhat = grad * scale.data
        # dL/dx via the standard layernorm backward.
        dx = (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        ) * inv_std
        batch_axes = tuple(range(grad.ndim - 1))
        dscale = (grad * xhat).sum(axis=batch_axes) if batch_axes else grad * xhat
        dshift = grad.sum(axis=batch_axes) if batch_axes else grad
        return dx, dscale, dshift

    return x._make(out_data, (x, scale, shift), backward)


# ------------------------------------------------------------------- joining
def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> tuple[np.ndarray, ...]:
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return tensors[0]._make(out_data, tuple(tensors), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(np.split(grad, offsets, axis=axis))

    return tensors[0]._make(out_data, tuple(tensors), backward)


def _iter_parameters(tensors: Iterable[Tensor]) -> Iterable[Tensor]:  # pragma: no cover
    return (t for t in tensors if t.requires_grad)
