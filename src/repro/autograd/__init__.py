"""A small reverse-mode automatic differentiation engine over numpy arrays.

The paper trains its PPO agent with PyTorch; this environment has no deep
learning framework, so we implement the required subset from scratch:
broadcast-aware elementwise ops, matmul, reductions, activations, and a
topological-order backward pass. :mod:`repro.nn` builds the network layers
and optimizers on top of this.

The engine is eager and define-by-run, like PyTorch: every op records its
parents and a closure that propagates gradients.
"""

from repro.autograd.tensor import (
    Tensor,
    clip,
    concat,
    exp,
    log,
    maximum,
    minimum,
    no_grad,
    relu,
    sqrt,
    stack,
    tanh,
    tensor,
    where,
)
from repro.autograd.functional import gaussian_entropy, gaussian_log_prob, mse_loss, softmax

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "tanh",
    "relu",
    "exp",
    "log",
    "sqrt",
    "clip",
    "minimum",
    "maximum",
    "where",
    "stack",
    "concat",
    "mse_loss",
    "softmax",
    "gaussian_log_prob",
    "gaussian_entropy",
]
