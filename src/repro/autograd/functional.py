"""Composite differentiable functions built from the primitive ops."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.tensor import Tensor, clip, exp, log

_LOG_2PI = math.log(2.0 * math.pi)


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error, as used for the PPO critic loss."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exps = exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - log(exp(shifted).sum(axis=axis, keepdims=True))


def gaussian_log_prob(actions: np.ndarray | Tensor, mean: Tensor, log_std: Tensor) -> Tensor:
    """Log density of ``actions`` under a diagonal Gaussian, summed over dims.

    ``actions`` may be a plain array (it carries no gradient in PPO).
    Returns a tensor of shape ``mean.shape[:-1]``.
    """
    actions = actions if isinstance(actions, Tensor) else Tensor(actions)
    std = exp(log_std)
    z = (actions - mean) / std
    per_dim = (z * z) * -0.5 - log_std - 0.5 * _LOG_2PI
    return per_dim.sum(axis=-1)


def gaussian_entropy(log_std: Tensor) -> Tensor:
    """Entropy of a diagonal Gaussian, summed over action dimensions.

    ``H = Σ_d (0.5 + 0.5 log 2π + log σ_d)``.  For a batch, the per-sample
    entropy is identical (the std is state-independent), so callers may sum
    or average as they wish.
    """
    return (log_std + (0.5 + 0.5 * _LOG_2PI)).sum(axis=-1)


def clipped_ratio(log_prob_new: Tensor, log_prob_old: np.ndarray, epsilon: float) -> tuple[Tensor, Tensor]:
    """PPO probability ratio and its clipped version.

    Returns ``(ratio, clip(ratio, 1-eps, 1+eps))``.
    """
    ratio = exp(log_prob_new - Tensor(log_prob_old))
    return ratio, clip(ratio, 1.0 - epsilon, 1.0 + epsilon)
