"""End-to-end integration: the full AutoMDT pipeline on the emulator.

These use a reduced-but-real training budget (a few hundred episodes with a
small network) so they run in tens of seconds while still exercising every
stage of Fig. 2: exploration → simulator training → production transfer.
"""

import pytest

from repro.baselines import GlobusController, MarlinController, StaticController
from repro.core import AutoMDT, PPOConfig, TrainingConfig
from repro.emulator import Testbed, fig5_read_bottleneck
from repro.transfer import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset


SMALL_PPO = PPOConfig(hidden_dim=64, policy_blocks=1, value_blocks=1)
SMALL_TRAINING = TrainingConfig(max_episodes=700, stagnation_episodes=700)


@pytest.fixture(scope="module")
def trained_pipeline() -> AutoMDT:
    pipeline = AutoMDT(ppo_config=SMALL_PPO, training_config=SMALL_TRAINING, seed=0)
    pipeline.explore(Testbed(fig5_read_bottleneck(), rng=0), duration=90.0)
    pipeline.train_offline()
    return pipeline


def run_transfer(controller, seed=1, gb=10, noise=0.02):
    engine = ModularTransferEngine(
        Testbed(fig5_read_bottleneck(), rng=seed),
        uniform_dataset(gb, 1e9),
        controller,
        EngineConfig(max_seconds=1200, probe_noise=noise, seed=seed),
    )
    return engine.run()


class TestFullPipeline:
    def test_training_made_progress(self, trained_pipeline):
        result = trained_pipeline.training_result
        assert result.best_reward > 6.0  # well above random play (~4-5)

    def test_automdt_completes_transfer(self, trained_pipeline):
        result = run_transfer(trained_pipeline.controller())
        assert result.completed
        # 10 GB over a 1 Gbps bottleneck: ideal 80 s; allow ramp slack even
        # for the reduced training budget.
        assert result.completion_time < 160.0

    def test_automdt_beats_globus(self, trained_pipeline):
        auto = run_transfer(trained_pipeline.controller())
        globus = run_transfer(GlobusController(parallelism=2))
        assert auto.completion_time < globus.completion_time

    def test_automdt_competitive_with_oracle(self, trained_pipeline):
        auto = run_transfer(trained_pipeline.controller())
        oracle = run_transfer(StaticController((13, 7, 5)))
        assert auto.completion_time <= oracle.completion_time * 1.6

    def test_concurrency_traces_reach_bottleneck_stage(self, trained_pipeline):
        """The read stage (the bottleneck here) must get the most threads."""
        result = run_transfer(trained_pipeline.controller())
        m = result.metrics
        mean_read = m.threads_read.mean(t_start=5)
        mean_net = m.threads_network.mean(t_start=5)
        mean_write = m.threads_write.mean(t_start=5)
        assert mean_read > mean_net
        assert mean_read > mean_write

    def test_deterministic_replay(self, trained_pipeline):
        a = run_transfer(trained_pipeline.controller(deterministic=True), seed=5)
        b = run_transfer(trained_pipeline.controller(deterministic=True), seed=5)
        assert a.completion_time == b.completion_time


class TestMarlinComparisonShape:
    def test_marlin_slower_than_trained_automdt(self, trained_pipeline):
        auto = run_transfer(trained_pipeline.controller(), gb=15)
        marlin = run_transfer(MarlinController(rng=2), gb=15)
        assert auto.completed and marlin.completed
        assert auto.completion_time <= marlin.completion_time * 1.05

    def test_marlin_less_stable(self, trained_pipeline):
        auto = run_transfer(trained_pipeline.controller(), gb=15)
        marlin = run_transfer(MarlinController(rng=2), gb=15)
        assert auto.metrics.stability("threads_read", t_start=10) <= (
            marlin.metrics.stability("threads_read", t_start=10) + 0.5
        )
