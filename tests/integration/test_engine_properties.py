"""Property-based integration tests: the engine must stay sane under ANY
controller behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import NetworkConfig, StorageConfig, Testbed, TestbedConfig
from repro.transfer import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset
from repro.utils.units import GiB


def make_testbed():
    return Testbed(
        TestbedConfig(
            source=StorageConfig(tpt=200, bandwidth=1500),
            destination=StorageConfig(tpt=150, bandwidth=1200),
            network=NetworkConfig(tpt=250, capacity=1000, ramp_time=1.0),
            sender_buffer_capacity=0.5 * GiB,
            receiver_buffer_capacity=0.5 * GiB,
            max_threads=20,
        ),
        rng=0,
    )


class ScriptedController:
    """Replays an arbitrary (possibly hostile) thread schedule."""

    def __init__(self, schedule):
        self.schedule = schedule
        self._i = 0

    def propose(self, obs):
        triple = self.schedule[self._i % len(self.schedule)]
        self._i += 1
        return triple

    def reset(self):
        self._i = 0


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-5, max_value=100),
            st.integers(min_value=-5, max_value=100),
            st.integers(min_value=-5, max_value=100),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_engine_invariants_under_arbitrary_controllers(schedule):
    """Property: for any controller schedule (even out-of-range values),
    the engine clamps threads, conserves bytes, and never overfills buffers."""
    dataset = uniform_dataset(2, 1e9)
    engine = ModularTransferEngine(
        make_testbed(),
        dataset,
        ScriptedController(schedule),
        EngineConfig(max_seconds=120),
    )
    result = engine.run()

    m = result.metrics
    # Thread series clamped to [1, max_threads].
    for series in (m.threads_read, m.threads_network, m.threads_write):
        assert series.min() >= 1
        assert series.max() <= 20
    # Buffers bounded.
    assert m.sender_usage.max() <= 0.5 * GiB * 1.001
    assert m.receiver_usage.max() <= 0.5 * GiB * 1.001
    # Bytes written monotone and bounded by the dataset size.
    written = m.bytes_written.values
    assert (np.diff(written) >= -1e-6).all()
    assert written[-1] <= dataset.total_bytes * (1 + 1e-9)
    # If it claims completion, everything was written.
    if result.completed:
        assert written[-1] == pytest.approx(dataset.total_bytes, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=20))
def test_completion_time_decreases_with_better_concurrency(n):
    """Property: completion time with n threads on every stage is never
    (materially) better than with the optimal triple."""
    from repro.baselines import StaticController

    dataset = uniform_dataset(2, 1e9)
    opt = ModularTransferEngine(
        make_testbed(), dataset, StaticController((5, 4, 7)), EngineConfig(max_seconds=300)
    ).run()
    uniform = ModularTransferEngine(
        make_testbed(), dataset, StaticController((n, n, n)), EngineConfig(max_seconds=300)
    ).run()
    assert opt.completion_time <= uniform.completion_time * 1.10
