"""Acceptance: seeded link flap — supervised resumes, unsupervised hangs.

The issue's acceptance scenario end-to-end on the paper's read-bottleneck
testbed: a link flap at t=10 s kills the established connections.  The bare
engine hangs on dead sockets until its time budget runs out; the supervised
engine detects the stall, backs off past the outage, resumes from
checkpoint, and completes — without re-transferring bytes already durable
at the destination.  Everything is deterministic given the seed.
"""

import pytest

from repro.baselines import StaticController
from repro.emulator import FaultSchedule, LinkFlap, Testbed
from repro.emulator.presets import fig5_read_bottleneck
from repro.transfer import (
    EngineConfig,
    ModularTransferEngine,
    SupervisorConfig,
    TransferSupervisor,
)
from repro.transfer.files import uniform_dataset

MAX_SECONDS = 120.0
TOTAL_BYTES = 5e9


def make_engine(seed=0):
    config = fig5_read_bottleneck()
    testbed = Testbed(
        config,
        rng=seed,
        faults=FaultSchedule([LinkFlap(start=10.0, duration=8.0)]),
    )
    return ModularTransferEngine(
        testbed,
        uniform_dataset(5, 1e9, name="acceptance"),
        StaticController(config.optimal_threads()),
        EngineConfig(max_seconds=MAX_SECONDS, seed=seed),
    )


@pytest.fixture(scope="module")
def unsupervised():
    engine = make_engine()
    return engine.run(), engine


@pytest.fixture(scope="module")
def supervised():
    engine = make_engine()
    result = TransferSupervisor(engine, SupervisorConfig(seed=0)).run()
    return result, engine


class TestUnsupervisedHangs:
    def test_times_out_without_completing(self, unsupervised):
        result, _ = unsupervised
        assert not result.completed
        assert result.timed_out
        assert result.completion_time >= MAX_SECONDS

    def test_final_observation_marked_done(self, unsupervised):
        _, engine = unsupervised
        assert engine.last_observation is not None
        assert engine.last_observation.done

    def test_progress_froze_at_the_flap(self, unsupervised):
        result, _ = unsupervised
        assert result.bytes_transferred < TOTAL_BYTES / 2


class TestSupervisedRecovers:
    def test_completes_well_within_budget(self, supervised):
        result, _ = supervised
        assert result.completed
        assert not result.timed_out
        assert result.total_bytes == TOTAL_BYTES
        assert result.completion_time < MAX_SECONDS

    def test_exactly_one_detected_and_recovered_incident(self, supervised):
        result, _ = supervised
        assert len(result.metrics.fault_events) == 1
        assert result.metrics.fault_events[0].kind == "link_flap"
        assert len(result.metrics.recoveries) == 1
        assert result.retries_used == 1

    def test_resume_does_not_retransfer_completed_bytes(self, supervised):
        result, engine = supervised
        first, second = result.attempts
        assert first.outcome == "stalled"
        assert second.outcome == "completed"
        assert second.start_bytes == pytest.approx(first.end_bytes)
        assert first.end_bytes > 0  # the flap hit mid-transfer, not at t=0
        # The last attempt's testbed counters survive in the engine: it read
        # only the unfinished remainder from the source, not all 5 GB.
        assert engine.testbed.total_read == pytest.approx(
            TOTAL_BYTES - first.end_bytes, rel=1e-6
        )

    def test_resume_starts_after_the_outage(self, supervised):
        result, engine = supervised
        flap = engine.testbed.faults.events[0]
        assert result.attempts[1].start_time >= flap.end


class TestDeterminism:
    def test_supervised_run_is_reproducible(self, supervised):
        result, _ = supervised
        again = TransferSupervisor(make_engine(), SupervisorConfig(seed=0)).run()
        assert again.completion_time == result.completion_time
        assert again.attempts == result.attempts
        assert [
            (e.kind, e.t_onset, e.t_detected) for e in again.metrics.fault_events
        ] == [(e.kind, e.t_onset, e.t_detected) for e in result.metrics.fault_events]

    def test_unsupervised_run_is_reproducible(self, unsupervised):
        result, _ = unsupervised
        again = make_engine().run()
        assert again.completion_time == result.completion_time
        assert again.bytes_transferred == result.bytes_transferred
