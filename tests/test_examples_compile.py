"""Every example script must at least parse and import-check.

Full example runs train agents (minutes); CI-grade checking here compiles
each script and verifies its imports resolve, which catches the common
rot (renamed APIs, moved modules) without the runtime cost.
"""

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                importlib.import_module(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name) or importlib.import_module(
                    f"{node.module}.{alias.name}"
                ), f"{node.module}.{alias.name} missing"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "bottleneck_scenarios.py", "compare_tools.py"} <= names
    assert len(EXAMPLES) >= 5
