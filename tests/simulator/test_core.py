"""Algorithm 1 simulator: conservation, coupling, throughput shapes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import IONetworkSimulator, SimulatorConfig
from repro.utils.errors import SimulationError
from repro.utils.units import GiB


def balanced_config(**overrides) -> SimulatorConfig:
    defaults = dict(
        tpt_read=80.0,
        tpt_network=160.0,
        tpt_write=200.0,
        bandwidth_read=1000.0,
        bandwidth_network=1000.0,
        bandwidth_write=1000.0,
        sender_buffer_capacity=1.0 * GiB,
        receiver_buffer_capacity=1.0 * GiB,
        max_threads=30,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestBasics:
    def test_optimal_threads_reach_bottleneck(self):
        sim = IONetworkSimulator(balanced_config())
        metrics = sim.step_second((13, 7, 5))
        for tput in metrics.throughputs:
            assert tput == pytest.approx(1000.0, rel=0.05)

    def test_throughput_capped_by_tpt(self):
        sim = IONetworkSimulator(balanced_config())
        metrics = sim.step_second((1, 7, 5))
        assert metrics.throughput_read <= 80.0 * 1.01

    def test_throughput_capped_by_bandwidth(self):
        # 30 read threads x 80 Mbps = 2400 raw, but ceiling is 1000.
        sim = IONetworkSimulator(balanced_config())
        metrics = sim.step_second((30, 7, 5))
        assert metrics.throughput_read <= 1000.0 * 1.01

    def test_threads_rounded_and_clamped(self):
        sim = IONetworkSimulator(balanced_config())
        metrics = sim.step_second((0.4, 99.0, 5.6))
        assert metrics.threads == (1, 30, 6)

    def test_wrong_thread_count_raises(self):
        sim = IONetworkSimulator(balanced_config())
        with pytest.raises(SimulationError):
            sim.step_second((1, 2))

    def test_deterministic(self):
        a, b = (IONetworkSimulator(balanced_config()) for _ in range(2))
        for _ in range(5):
            ma = a.step_second((10, 5, 5))
            mb = b.step_second((10, 5, 5))
            assert ma == mb


class TestBufferCoupling:
    def test_overprovisioned_read_fills_sender_buffer(self):
        sim = IONetworkSimulator(balanced_config())
        for _ in range(30):
            metrics = sim.step_second((30, 2, 2))
        assert metrics.sender_usage > 0.25 * sim.config.sender_buffer_capacity

    def test_full_sender_buffer_throttles_read(self):
        cfg = balanced_config(sender_buffer_capacity=64e6)  # small buffer
        sim = IONetworkSimulator(cfg)
        for _ in range(10):
            metrics = sim.step_second((30, 1, 1))
        # Once the buffer is full, read can only move what the network drains.
        assert metrics.throughput_read < 400.0

    def test_network_starved_without_reader(self):
        sim = IONetworkSimulator(balanced_config())
        metrics = sim.step_second((1, 10, 10))
        # Network can move at most what one read thread supplies.
        assert metrics.throughput_network <= metrics.throughput_read * 1.2 + 1.0

    def test_write_starved_without_network(self):
        sim = IONetworkSimulator(balanced_config(), receiver_usage=0.0)
        metrics = sim.step_second((5, 1, 10))
        assert metrics.throughput_write <= metrics.throughput_network * 1.2 + 1.0

    def test_preloaded_receiver_lets_write_run(self):
        sim = IONetworkSimulator(balanced_config(), receiver_usage=0.5 * GiB)
        metrics = sim.step_second((1, 1, 5))
        assert metrics.throughput_write == pytest.approx(1000.0, rel=0.1)

    def test_usage_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            IONetworkSimulator(balanced_config(), sender_usage=-1.0)
        with pytest.raises(SimulationError):
            IONetworkSimulator(balanced_config(), receiver_usage=2 * GiB)


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=30),
            st.integers(min_value=1, max_value=30),
            st.integers(min_value=1, max_value=30),
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_bytes_conserved(self, threads, seconds):
        """Property: sender+receiver occupancy equals bytes read - written."""
        sim = IONetworkSimulator(balanced_config())
        read = net = written = 0.0
        for _ in range(seconds):
            m = sim.step_second(threads)
            # Throughputs are normalized by finish time, so convert back
            # through the recorded buffers instead: occupancy must be
            # non-negative and bounded.
            assert 0.0 <= m.sender_usage <= sim.config.sender_buffer_capacity
            assert 0.0 <= m.receiver_usage <= sim.config.receiver_buffer_capacity

    def test_buffers_persist_across_calls(self):
        sim = IONetworkSimulator(balanced_config())
        sim.step_second((30, 1, 1))
        filled = sim.sender_usage
        assert filled > 0
        sim.step_second((1, 1, 1))
        # One read thread adds little; the state carried over.
        assert sim.sender_usage >= filled * 0.5

    def test_reset_clears_state(self):
        sim = IONetworkSimulator(balanced_config())
        sim.step_second((30, 1, 1))
        sim.reset()
        assert sim.sender_usage == 0.0
        assert sim.receiver_usage == 0.0
        assert sim.elapsed == 0.0


class TestNormalization:
    def test_elapsed_accumulates(self):
        sim = IONetworkSimulator(balanced_config())
        sim.step_second((5, 5, 5))
        sim.step_second((5, 5, 5))
        assert sim.elapsed == pytest.approx(2.0)

    def test_more_threads_monotone_read_until_cap(self):
        results = []
        for n in (1, 4, 8, 13):
            sim = IONetworkSimulator(balanced_config())
            results.append(sim.step_second((n, 7, 5)).throughput_read)
        assert results == sorted(results)

    def test_metrics_throughputs_property(self):
        sim = IONetworkSimulator(balanced_config())
        m = sim.step_second((5, 5, 5))
        assert m.throughputs == (m.throughput_read, m.throughput_network, m.throughput_write)
