"""Scenario sampling and profile-to-config bridging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import SimulatorConfig, sample_scenario, scenario_from_profile


class TestFromProfile:
    def test_copies_rates(self):
        cfg = scenario_from_profile((80, 160, 200), (900, 1000, 950), max_threads=25)
        assert cfg.tpt == (80, 160, 200)
        assert cfg.bandwidth == (900, 1000, 950)
        assert cfg.max_threads == 25
        assert cfg.bottleneck == 900


class TestSampleScenario:
    def test_deterministic_for_seed(self):
        assert sample_scenario(5) == sample_scenario(5)

    def test_different_seeds_differ(self):
        assert sample_scenario(1) != sample_scenario(2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_sampled_scenario_is_valid(self, seed):
        """Property: any sampled scenario passes config validation and has a
        feasible optimum."""
        cfg = sample_scenario(seed)
        optimal = cfg.optimal_threads()
        assert all(1 <= n <= cfg.max_threads for n in optimal)
        assert cfg.bottleneck == min(cfg.bandwidth)

    def test_bottleneck_in_requested_range(self):
        for seed in range(10):
            cfg = sample_scenario(seed, bottleneck_range=(100.0, 200.0))
            assert 100.0 <= cfg.bottleneck <= 200.0

    def test_jitter_around_base(self):
        base = SimulatorConfig(tpt_read=100.0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            jittered = sample_scenario(rng, base=base, jitter=0.1)
            assert 90.0 <= jittered.tpt_read <= 110.0

    def test_jitter_preserves_buffers(self):
        base = SimulatorConfig(sender_buffer_capacity=123456789.0)
        jittered = sample_scenario(0, base=base)
        assert jittered.sender_buffer_capacity == pytest.approx(123456789.0)
