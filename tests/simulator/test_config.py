"""SimulatorConfig validation and derived quantities."""

import pytest

from repro.simulator import SimulatorConfig
from repro.utils.errors import ConfigError


def fig5_read() -> SimulatorConfig:
    return SimulatorConfig(
        tpt_read=80,
        tpt_network=160,
        tpt_write=200,
        bandwidth_read=1000,
        bandwidth_network=1000,
        bandwidth_write=1000,
        max_threads=30,
    )


class TestValidation:
    def test_defaults_valid(self):
        SimulatorConfig()

    @pytest.mark.parametrize(
        "field",
        ["tpt_read", "bandwidth_network", "sender_buffer_capacity", "duration", "epsilon"],
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ConfigError):
            SimulatorConfig(**{field: 0.0})

    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigError):
            SimulatorConfig(max_threads=0)


class TestDerived:
    def test_bottleneck_is_min_bandwidth(self):
        cfg = SimulatorConfig(bandwidth_read=900, bandwidth_network=700, bandwidth_write=800)
        assert cfg.bottleneck == 700

    def test_paper_fig5_read_bottleneck_optimal(self):
        # §V-B1: throttles (80, 160, 200) on 1 Gbps -> optimal (13, 7, 5).
        assert fig5_read().optimal_threads() == (13, 7, 5)

    def test_paper_fig5_write_bottleneck_optimal(self):
        cfg = SimulatorConfig(
            tpt_read=200, tpt_network=150, tpt_write=70,
            bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        )
        # §V-B1 column 3: optimal (5, 7, 15).
        assert cfg.optimal_threads() == (5, 7, 15)

    def test_optimal_capped_at_max_threads(self):
        cfg = SimulatorConfig(tpt_read=1.0, bandwidth_read=1000, max_threads=20)
        assert cfg.optimal_threads()[0] == 20

    def test_tpt_and_bandwidth_tuples(self):
        cfg = fig5_read()
        assert cfg.tpt == (80, 160, 200)
        assert cfg.bandwidth == (1000, 1000, 1000)

    def test_label_not_in_equality(self):
        assert SimulatorConfig(label="a") == SimulatorConfig(label="b")
