"""The step_second rate cache: bit-identical results, bounded growth."""

import numpy as np

from repro.simulator import SimulatorConfig
from repro.simulator.core import IONetworkSimulator


def _config(**kw):
    kw.setdefault("tpt_read", 80.0)
    kw.setdefault("tpt_network", 160.0)
    kw.setdefault("tpt_write", 200.0)
    kw.setdefault("bandwidth_read", 1000.0)
    kw.setdefault("bandwidth_network", 1000.0)
    kw.setdefault("bandwidth_write", 1000.0)
    kw.setdefault("max_threads", 20)
    return SimulatorConfig(**kw)


def _random_triples(n, seed=0):
    rng = np.random.default_rng(seed)
    return [tuple(int(v) for v in rng.integers(1, 21, 3)) for _ in range(n)]


class TestRateCacheEquivalence:
    def test_cache_on_bit_identical_to_off(self):
        """Stateful buffer dynamics included: same call sequence, same metrics."""
        config = _config()
        cached = IONetworkSimulator(config, cache_rates=True)
        plain = IONetworkSimulator(config, cache_rates=False)
        for triple in _random_triples(200):
            a = cached.step_second(triple)
            b = plain.step_second(triple)
            assert a == b  # frozen dataclass: exact field-wise equality
            assert cached.last_blocked_retries == plain.last_blocked_retries
            assert cached.last_queue_peak == plain.last_queue_peak
        assert cached.sender_usage == plain.sender_usage
        assert cached.receiver_usage == plain.receiver_usage

    def test_repeat_triples_hit_the_cache(self):
        sim = IONetworkSimulator(_config(), cache_rates=True)
        for _ in range(5):
            sim.step_second((4, 4, 4))
            sim.step_second((8, 2, 6))
        assert set(sim._rate_cache) == {(4, 4, 4), (8, 2, 6)}

    def test_cache_disabled_stays_empty(self):
        sim = IONetworkSimulator(_config(), cache_rates=False)
        sim.step_second((4, 4, 4))
        assert sim._rate_cache == {}

    def test_cache_keys_are_clamped_triples(self):
        """Out-of-range thread requests share the clamped triple's entry."""
        sim = IONetworkSimulator(_config(max_threads=10), cache_rates=True)
        a = sim.step_second((0, 999, 2.4))
        sim.reset()
        b = sim.step_second((1, 10, 2))
        assert a == b
        assert set(sim._rate_cache) == {(1, 10, 2)}

    def test_cache_capped(self):
        sim = IONetworkSimulator(_config(), cache_rates=True)
        sim._RATE_CACHE_MAX = 4  # instance attr shadows the class cap
        results = [sim.step_second((n, n, n)).throughputs for n in range(1, 11)]
        assert len(sim._rate_cache) <= 4

        # Eviction never changes values: replay the sequence cache-free.
        plain = IONetworkSimulator(_config(), cache_rates=False)
        replay = [plain.step_second((n, n, n)).throughputs for n in range(1, 11)]
        assert results == replay

    def test_eviction_is_fifo_not_clear(self):
        """Overflow drops only the oldest entry, keeping recent hot triples.

        Regression test for the original behaviour, where hitting the cap
        ``clear()``-ed the whole cache: a sweep of cold triples would then
        evict the hot working set inserted just before it.
        """
        sim = IONetworkSimulator(_config(), cache_rates=True)
        cap = 6
        sim._RATE_CACHE_MAX = cap
        # Fill to one below the cap, ending with the "hot" triple.
        for n in range(1, cap - 1):
            sim.step_second((n, n, n))
        hot = (20, 20, 20)
        sim.step_second(hot)
        assert len(sim._rate_cache) == cap - 1
        # Sweep several cold triples past the cap.
        for n in range(cap, cap + 4):
            sim.step_second((n, n, n))
        # The hot triple survived; the cache stayed at the cap; only the
        # oldest entries were dropped, in insertion order.
        assert hot in sim._rate_cache
        assert len(sim._rate_cache) == cap
        assert (1, 1, 1) not in sim._rate_cache
