"""BatchedSimulator vs IONetworkSimulator: exact equivalence sweep.

The batched engine's contract is *bit-identity*: every ``StageMetrics``
field and both diagnostics (``last_blocked_retries``, ``last_queue_peak``)
must equal the scalar oracle's exactly — ``==`` on floats, no tolerance —
across seeded random ``(threads, reset, usage)`` sequences.  The property
sweep drives both simulators through the three fig5 testbed presets
(read / network / write bottleneck), which between them exercise full
bursts, partial boundary chunks and ε-retry blocking.
"""

import numpy as np
import pytest

from repro.emulator.presets import (
    fig5_network_bottleneck,
    fig5_read_bottleneck,
    fig5_write_bottleneck,
)
from repro.simulator import (
    BatchedSimulator,
    IONetworkSimulator,
    SimulatorConfig,
    simulator_config_from_testbed,
)

PRESETS = {
    "fig5-read": fig5_read_bottleneck,
    "fig5-network": fig5_network_bottleneck,
    "fig5-write": fig5_write_bottleneck,
}


def drive_both(config, *, steps, batch, seed, reset_every):
    """Step scalar oracles and the batched engine in lockstep; compare all."""
    rng = np.random.default_rng(seed)
    scalars = [IONetworkSimulator(config, cache_rates=True) for _ in range(batch)]
    batched = BatchedSimulator(config, batch)
    hi = config.max_threads
    for step in range(steps):
        if reset_every and step % reset_every == 0:
            snd = rng.uniform(0.0, 0.5 * config.sender_buffer_capacity, batch)
            rcv = rng.uniform(0.0, 0.5 * config.receiver_buffer_capacity, batch)
            for i, sim in enumerate(scalars):
                sim.reset(sender_usage=float(snd[i]), receiver_usage=float(rcv[i]))
            batched.reset(sender_usage=snd, receiver_usage=rcv)
        threads = rng.integers(1, hi + 1, (batch, 3))
        expected = [
            sim.step_second(tuple(int(v) for v in threads[i]))
            for i, sim in enumerate(scalars)
        ]
        got = batched.step_second(threads)
        for i, want in enumerate(expected):
            assert got.column(i) == want, f"step {step} column {i}"
            assert batched.last_blocked_retries[i] == scalars[i].last_blocked_retries
            assert batched.last_queue_peak[i] == scalars[i].last_queue_peak
        assert np.all(batched.sender_usage == [s.sender_usage for s in scalars])
        assert np.all(batched.receiver_usage == [s.receiver_usage for s in scalars])


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_equivalence_sweep_fig5_presets(name):
    """~1k sequences: 56 steps x 6 columns x 3 presets, random resets."""
    testbed = PRESETS[name]()
    config = simulator_config_from_testbed(testbed)
    drive_both(config, steps=56, batch=6, seed=sum(map(ord, name)),
               reset_every=13)


def test_equivalence_tiny_buffers_partial_storm():
    """Buffers a few chunks deep: boundary chunks and blocking dominate."""
    config = SimulatorConfig(
        tpt_read=200.0, tpt_network=150.0, tpt_write=50.0,
        bandwidth_read=2000.0, bandwidth_network=1000.0, bandwidth_write=400.0,
        sender_buffer_capacity=5e5, receiver_buffer_capacity=4e5,
        max_threads=12, label="tiny",
    )
    drive_both(config, steps=30, batch=6, seed=3, reset_every=7)


def test_equivalence_heterogeneous_configs():
    """One batch, different configs per column — fleet co-simulation shape."""
    configs = [
        simulator_config_from_testbed(PRESETS[name]())
        for name in sorted(PRESETS)
    ] * 2
    rng = np.random.default_rng(11)
    scalars = [IONetworkSimulator(c, cache_rates=True) for c in configs]
    batched = BatchedSimulator(configs)
    for step in range(25):
        threads = rng.integers(1, 31, (len(configs), 3))
        expected = [
            sim.step_second(tuple(int(v) for v in threads[i]))
            for i, sim in enumerate(scalars)
        ]
        got = batched.step_second(threads)
        for i, want in enumerate(expected):
            assert got.column(i) == want, f"step {step} column {i}"


def test_equivalence_clamps_threads_like_scalar():
    config = simulator_config_from_testbed(fig5_read_bottleneck())
    scalar = IONetworkSimulator(config)
    batched = BatchedSimulator(config, 1)
    want = scalar.step_second((0, 999, 2.4))
    got = batched.step_second(np.array([[0.0, 999.0, 2.4]]))
    assert got.column(0) == want
    assert got.threads[0].tolist() == list(want.threads)
