"""BatchedSimulator unit behaviour: API, reset masks, telemetry discipline."""

import numpy as np
import pytest

from repro import obs
from repro.simulator import BatchedSimulator, SimulatorConfig
from repro.utils.errors import SimulationError


def _config(**kw):
    kw.setdefault("tpt_read", 80.0)
    kw.setdefault("tpt_network", 160.0)
    kw.setdefault("tpt_write", 200.0)
    kw.setdefault("max_threads", 10)
    return SimulatorConfig(**kw)


class TestConstruction:
    def test_single_config_replicated(self):
        sim = BatchedSimulator(_config(), 5)
        assert sim.batch == 5
        assert len(sim.configs) == 5

    def test_empty_config_list_rejected(self):
        with pytest.raises(SimulationError):
            BatchedSimulator([])

    def test_batch_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            BatchedSimulator([_config(), _config()], 3)

    def test_bad_threads_shape_rejected(self):
        sim = BatchedSimulator(_config(), 2)
        with pytest.raises(SimulationError):
            sim.step_second(np.ones((3, 3)))

    def test_out_of_range_usage_rejected(self):
        config = _config()
        with pytest.raises(SimulationError):
            BatchedSimulator(config, 2, sender_usage=[0.0, -1.0])
        sim = BatchedSimulator(config, 2)
        with pytest.raises(SimulationError):
            sim.reset(receiver_usage=config.receiver_buffer_capacity * 2.0)


class TestStepping:
    def test_metrics_shapes_and_elapsed(self):
        sim = BatchedSimulator(_config(), 4)
        metrics = sim.step_second(np.full((4, 3), 5))
        assert len(metrics) == 4
        assert metrics.throughputs.shape == (4, 3)
        assert metrics.threads.shape == (4, 3)
        assert np.all(sim.elapsed == 1.0)
        assert sim.last_blocked_retries.shape == (4,)
        assert np.all(sim.last_queue_peak == 15)

    def test_identical_columns_march_identically(self):
        sim = BatchedSimulator(_config(), 3)
        metrics = sim.step_second(np.full((3, 3), 4))
        for field in ("throughput_read", "throughput_network", "throughput_write",
                      "sender_usage", "receiver_usage"):
            column = getattr(metrics, field)
            assert column[0] == column[1] == column[2]

    def test_masked_reset_touches_only_selected_columns(self):
        sim = BatchedSimulator(_config(), 3)
        sim.step_second(np.full((3, 3), 6))
        before_snd = sim.sender_usage.copy()
        before_rcv = sim.receiver_usage.copy()
        mask = np.array([True, False, False])
        sim.reset(sender_usage=1234.0, receiver_usage=567.0, mask=mask)
        assert sim.sender_usage[0] == 1234.0 and sim.receiver_usage[0] == 567.0
        assert sim.elapsed[0] == 0.0
        assert np.all(sim.sender_usage[1:] == before_snd[1:])
        assert np.all(sim.receiver_usage[1:] == before_rcv[1:])
        assert np.all(sim.elapsed[1:] == 1.0)


class TestTelemetry:
    def test_hot_loop_makes_no_session_lookups(self, monkeypatch):
        """Obs-off stepping must never consult the obs session registry."""
        import repro.simulator.batch as batch_module

        calls = []

        def spy_active():
            calls.append(1)
            return None

        monkeypatch.setattr(batch_module.obs, "active", spy_active)
        sim = BatchedSimulator(_config(), 4)
        for _ in range(3):
            sim.step_second(np.full((4, 3), 5))
        assert calls == []  # zero lookups across construction + stepping
        assert sim.export_telemetry() is False
        assert calls == [1]  # the one explicit end-of-run export call

    def test_export_telemetry_flushes_counters(self, tmp_path):
        with obs.session(tmp_path) as sess:
            sim = BatchedSimulator(_config(), 8)
            sim.step_second(np.full((8, 3), 5))
            sim.step_second(np.full((8, 3), 7))
            assert sim.export_telemetry() is True
            registry = sess.registry
            assert registry.counter("sim/batch_steps").value == 2.0
            assert registry.counter("sim/batch_size").value == 16.0
            assert registry.counter("sim/batch_rounds").value > 0.0
            assert registry.counter("sim/batch_events").value > 0.0
        # Export drained the accumulators: a second export is a no-op.
        with obs.session(tmp_path / "second") as sess:
            assert sim.export_telemetry() is False

    def test_export_without_session_is_noop(self):
        sim = BatchedSimulator(_config(), 2)
        sim.step_second(np.full((2, 3), 3))
        assert sim.export_telemetry() is False
