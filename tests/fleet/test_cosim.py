"""Opt-in fleet co-simulation: observational, deterministic, zero impact.

``FleetConfig(cosim=True)`` runs one Algorithm-1 simulator column per
admitted job (fleet-vectorized: one ``step_second`` call per round) as a
shadow model.  It must never change a scheduling decision, and with the
flag off the report — fingerprint included — must be byte-identical to a
run that has never heard of co-simulation.
"""

from repro import obs
from repro.fleet import (
    FleetConfig,
    FleetScheduler,
    JobFaultProfile,
    TenantSpec,
    TransferRequest,
)

QUIET = JobFaultProfile(stalls=False, corruption=False, crashes=False)


def _run(tmp_path, tag, **kwargs):
    kwargs.setdefault("quantum", 10.0)
    kwargs.setdefault("stall_intervals", 4)
    kwargs.setdefault("horizon", 2400.0)
    kwargs.setdefault("seed", 9)
    kwargs.setdefault("faults", QUIET)
    config = FleetConfig(tenants=(TenantSpec("a"), TenantSpec("b")), **kwargs)
    requests = [
        TransferRequest(tenant="ab"[i % 2], gigabytes=0.25, name=f"r{i}")
        for i in range(4)
    ]
    return FleetScheduler(config, requests, tmp_path / tag).run()


def test_cosim_off_report_has_no_cosim_section(tmp_path):
    report = _run(tmp_path, "off")
    assert "cosim" not in report
    # Same seed, same requests: the off-path fingerprint is stable.
    assert report["fingerprint"] == _run(tmp_path, "off2")["fingerprint"]


def test_cosim_does_not_change_scheduling(tmp_path):
    off = _run(tmp_path, "off")
    on = _run(tmp_path, "on", cosim=True)
    cosim = on.pop("cosim")
    on.pop("fingerprint"), off.pop("fingerprint")
    assert on == off  # every job state, allocation stat and invariant equal
    assert cosim["rounds"] > 0
    assert cosim["batch"] == len(on["jobs"])
    assert len(cosim["predicted_bytes"]) == len(on["jobs"])
    # Every completed job was dispatched, so the twin predicted progress.
    assert all(b > 0.0 for b in cosim["predicted_bytes"])


def test_cosim_report_is_deterministic(tmp_path):
    first = _run(tmp_path, "a", cosim=True)
    second = _run(tmp_path, "b", cosim=True)
    assert first["cosim"] == second["cosim"]
    assert first["fingerprint"] == second["fingerprint"]


def test_cosim_exports_batch_telemetry(tmp_path):
    with obs.session(tmp_path / "obs") as sess:
        _run(tmp_path, "telemetry", cosim=True)
        registry = sess.registry
        assert registry.counter("sim/batch_steps").value > 0.0
        assert registry.counter("sim/batch_size").value > 0.0
