"""Weighted max-min water-filling and the deterministic token bucket."""

import math

import pytest

from repro.fleet import TokenBucket, weighted_max_min


class TestWeightedMaxMin:
    def test_equal_split_under_infinite_demand(self):
        alloc = weighted_max_min(90.0, {"a": math.inf, "b": math.inf, "c": math.inf})
        assert alloc == {"a": pytest.approx(30.0), "b": pytest.approx(30.0),
                         "c": pytest.approx(30.0)}

    def test_satisfied_demand_redistributes(self):
        # a only wants 10; its leftover 20 splits between b and c.
        alloc = weighted_max_min(90.0, {"a": 10.0, "b": math.inf, "c": math.inf})
        assert alloc["a"] == pytest.approx(10.0)
        assert alloc["b"] == alloc["c"] == pytest.approx(40.0)

    def test_weights_scale_shares(self):
        alloc = weighted_max_min(90.0, {"a": math.inf, "b": math.inf},
                                 weights={"a": 2.0, "b": 1.0})
        assert alloc["a"] == pytest.approx(60.0)
        assert alloc["b"] == pytest.approx(30.0)

    def test_never_exceeds_capacity_or_demand(self):
        demands = {"a": 5.0, "b": 17.0, "c": 100.0, "d": 0.0}
        alloc = weighted_max_min(50.0, demands)
        assert sum(alloc.values()) <= 50.0 + 1e-9
        for key, value in alloc.items():
            assert value <= demands[key] + 1e-9
        assert alloc["d"] == 0.0

    def test_under_subscription_gives_everyone_their_demand(self):
        alloc = weighted_max_min(100.0, {"a": 10.0, "b": 20.0})
        assert alloc == {"a": pytest.approx(10.0), "b": pytest.approx(20.0)}

    def test_insertion_order_irrelevant(self):
        d1 = {"x": 30.0, "y": math.inf, "z": 12.0}
        d2 = {"z": 12.0, "x": 30.0, "y": math.inf}
        assert weighted_max_min(40.0, d1) == weighted_max_min(40.0, d2)

    def test_zero_capacity(self):
        assert weighted_max_min(0.0, {"a": 5.0}) == {"a": 0.0}


class TestTokenBucket:
    def test_unthrottled_by_default(self):
        bucket = TokenBucket()
        assert math.isinf(bucket.available(0.0))
        assert bucket.take(1e12, 5.0) == 1e12

    def test_burst_then_rate_limited(self):
        bucket = TokenBucket(rate=10.0, burst=100.0)
        assert bucket.take(100.0, 0.0) == 100.0  # full burst
        assert bucket.take(50.0, 0.0) == 0.0  # empty
        assert bucket.take(50.0, 2.0) == pytest.approx(20.0)  # 2 s of refill

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=30.0)
        bucket.take(30.0, 0.0)
        assert bucket.available(1000.0) == pytest.approx(30.0)

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=10.0, burst=100.0)
        bucket.take(100.0, 10.0)
        # An earlier timestamp neither refills nor drains.
        assert bucket.available(5.0) == 0.0

    def test_deterministic_replay(self):
        def drive():
            bucket = TokenBucket(rate=7.0, burst=21.0)
            return [bucket.take(amount, t) for amount, t in
                    [(5.0, 0.0), (30.0, 1.0), (2.0, 4.0), (50.0, 9.0)]]

        assert drive() == drive()
