"""Circuit breaker: trip, cool down, probe, and the legal-transition audit."""

import pytest

from repro.fleet import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    transitions_legal,
)
from repro.utils.errors import BreakerTransitionError


def make(threshold=3, cooldown=30.0, probes=1):
    return CircuitBreaker(
        BreakerConfig(
            failure_threshold=threshold, cooldown=cooldown, half_open_successes=probes
        ),
        name="test",
    )


class TestStateMachine:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = make(threshold=3)
        assert breaker.record_failure(1.0) == CLOSED
        assert breaker.record_failure(2.0) == CLOSED
        assert breaker.record_failure(3.0) == OPEN
        assert breaker.times_opened == 1
        assert not breaker.allows(3.0)

    def test_success_resets_the_consecutive_count(self):
        breaker = make(threshold=2)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_cooldown_opens_the_probe_window(self):
        breaker = make(threshold=1, cooldown=10.0)
        breaker.record_failure(5.0)
        assert breaker.poll(14.9) == OPEN
        assert breaker.poll(15.0) == HALF_OPEN
        assert breaker.allows(15.0)

    def test_successful_probe_closes(self):
        breaker = make(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.poll(10.0)
        assert breaker.record_success(11.0) == CLOSED

    def test_failed_probe_reopens(self):
        breaker = make(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.poll(10.0)
        assert breaker.record_failure(11.0, "stall") == OPEN
        assert breaker.times_opened == 2
        # The next probe window counts from the re-open instant.
        assert breaker.poll(20.9) == OPEN
        assert breaker.poll(21.0) == HALF_OPEN

    def test_multiple_probe_successes_required(self):
        breaker = make(threshold=1, cooldown=5.0, probes=2)
        breaker.record_failure(0.0)
        breaker.poll(5.0)
        assert breaker.record_success(6.0) == HALF_OPEN
        assert breaker.record_success(7.0) == CLOSED

    def test_state_codes_for_gauges(self):
        breaker = make(threshold=1, cooldown=5.0)
        assert breaker.state_code == 0
        breaker.record_failure(0.0)
        assert breaker.state_code == 2
        breaker.poll(5.0)
        assert breaker.state_code == 1


class TestTransitionAudit:
    def test_full_cycle_is_legal_and_logged(self):
        breaker = make(threshold=1, cooldown=5.0)
        breaker.record_failure(1.0, "link_flap")
        breaker.poll(6.0)
        breaker.record_success(7.0)
        hops = [(tr.src, tr.dst) for tr in breaker.transitions]
        assert hops == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]
        assert transitions_legal(breaker.transitions)
        assert breaker.transitions[0].reason == "link_flap"
        assert breaker.transitions[-1].reason == "probe_succeeded"

    def test_validator_rejects_illegal_hop(self):
        assert not transitions_legal([(CLOSED, HALF_OPEN)])
        assert not transitions_legal([(OPEN, CLOSED)])

    def test_validator_rejects_broken_chain(self):
        # Each hop legal in isolation, but the chain teleports.
        assert not transitions_legal([(CLOSED, OPEN), (HALF_OPEN, CLOSED)])

    def test_validator_rejects_wrong_birth_state(self):
        assert not transitions_legal([(OPEN, HALF_OPEN)])
        assert transitions_legal([])  # a never-tripped breaker is legal

    def test_illegal_transition_raises_immediately(self):
        breaker = make(threshold=1)
        with pytest.raises(BreakerTransitionError):
            breaker._transition(HALF_OPEN, 0.0, "bug")  # CLOSED -> HALF_OPEN

    def test_legal_set_is_exactly_the_documented_machine(self):
        assert LEGAL_TRANSITIONS == {
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED), (HALF_OPEN, OPEN)
        }
