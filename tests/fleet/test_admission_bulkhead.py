"""Admission control (typed rejection) and per-tenant bulkheads."""

import pytest

from repro.fleet import AdmissionQueue, Bulkhead, Priority, RejectReason, TransferRequest
from repro.utils.errors import ConfigError


class TestTransferRequest:
    def test_defaults(self):
        request = TransferRequest(tenant="a")
        assert request.priority == Priority.BATCH
        assert request.submit_at == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TransferRequest(tenant="a", gigabytes=0.0)
        with pytest.raises(ConfigError):
            TransferRequest(tenant="a", submit_at=-1.0)

    def test_priority_ordering(self):
        assert Priority.INTERACTIVE > Priority.BATCH > Priority.BEST_EFFORT


class TestAdmissionQueue:
    def test_admits_until_global_limit(self):
        queue = AdmissionQueue(limit=2, per_tenant_limit=2)
        assert queue.offer("a", 0.0).admitted
        assert queue.offer("b", 1.0).admitted
        decision = queue.offer("c", 2.0)
        assert not decision.admitted
        assert decision.reason == RejectReason.QUEUE_FULL
        assert decision.t == 2.0

    def test_per_tenant_limit_is_a_queue_bulkhead(self):
        queue = AdmissionQueue(limit=10, per_tenant_limit=1)
        assert queue.offer("a", 0.0).admitted
        decision = queue.offer("a", 1.0)
        assert not decision.admitted
        assert decision.reason == RejectReason.TENANT_QUEUE_FULL
        # Another tenant still gets in: the bound is per tenant.
        assert queue.offer("b", 1.0).admitted

    def test_unknown_tenant_is_typed(self):
        queue = AdmissionQueue()
        decision = queue.offer("ghost", 0.0, known=False)
        assert not decision.admitted
        assert decision.reason == RejectReason.UNKNOWN_TENANT

    def test_rejection_never_raises_and_is_recorded(self):
        queue = AdmissionQueue(limit=1)
        queue.offer("a", 0.0)
        queue.offer("b", 1.0)
        assert len(queue.rejections) == 1
        assert queue.rejections[0].to_dict()["reason"] == "queue_full"

    def test_settle_frees_capacity(self):
        queue = AdmissionQueue(limit=1)
        queue.offer("a", 0.0)
        queue.settle("a")
        assert queue.offer("a", 5.0).admitted

    def test_settle_without_admission_raises(self):
        queue = AdmissionQueue()
        with pytest.raises(ValueError):
            queue.settle("a")


class TestBulkhead:
    def test_slots_bounded(self):
        bulkhead = Bulkhead(2, name="a")
        assert bulkhead.try_acquire()
        assert bulkhead.try_acquire()
        assert not bulkhead.try_acquire()
        assert bulkhead.saturations == 1
        assert bulkhead.available == 0

    def test_release_frees_a_slot(self):
        bulkhead = Bulkhead(1)
        bulkhead.try_acquire()
        bulkhead.release()
        assert bulkhead.try_acquire()

    def test_release_underflow_raises(self):
        with pytest.raises(ValueError):
            Bulkhead(1).release()

    def test_release_all_resets_the_round(self):
        bulkhead = Bulkhead(3)
        bulkhead.try_acquire()
        bulkhead.try_acquire()
        bulkhead.release_all()
        assert bulkhead.available == 3
