"""FleetConfig.adapt: opt-in adaptive jobs, fingerprint-neutral when off."""

from repro.adapt import AdaptiveController
from repro.fleet import FleetConfig, FleetScheduler, JobFaultProfile, TenantSpec, TransferRequest

QUIET = JobFaultProfile(stalls=False, corruption=False, crashes=False)


def run_fleet(tmp_path, *, adapt, seed=5):
    config = FleetConfig(
        tenants=(TenantSpec("t0", max_concurrency=4),),
        seed=seed,
        quantum=10.0,
        faults=QUIET,
        adapt=adapt,
    )
    requests = [
        TransferRequest(tenant="t0", gigabytes=0.25, name=f"r{i}") for i in range(3)
    ]
    return FleetScheduler(config, requests, tmp_path / "jobs").run()


def test_adapt_off_attaches_nothing(tmp_path):
    report = run_fleet(tmp_path, adapt=False)
    assert all("adapt" not in j for j in report["jobs"])


def test_adapt_off_fingerprint_is_deterministic(tmp_path):
    one = run_fleet(tmp_path / "a", adapt=False)
    two = run_fleet(tmp_path / "b", adapt=False)
    assert one["fingerprint"] == two["fingerprint"]


def test_adapt_on_wraps_jobs_and_reports(tmp_path):
    report = run_fleet(tmp_path, adapt=True)
    assert report["all_passed"]
    for j in report["jobs"]:
        assert j["state"] == "completed"
        adapt = j["adapt"]
        assert adapt["state"] == "nominal"  # quiet fleet: no drift to find
        assert adapt["rollbacks"] == 0


def test_adapt_on_builds_adaptive_controllers(tmp_path):
    config = FleetConfig(tenants=(TenantSpec("t0"),), faults=QUIET, adapt=True)
    requests = [TransferRequest(tenant="t0", gigabytes=0.25, name="r0")]
    scheduler = FleetScheduler(config, requests, tmp_path / "jobs")
    scheduler.run()
    job = scheduler.entries[0].job
    assert isinstance(job.controller, AdaptiveController)
    assert job.controller.config.enabled
