"""Fleet chaos soak: per-case invariants, fairness bound, determinism check."""

from repro.harness.soak import (
    FleetSoakConfig,
    render_fleet_soak_report,
    run_fleet_soak,
)


def small_config(**kwargs):
    kwargs.setdefault("cases", 1)
    kwargs.setdefault("transfers", 8)
    kwargs.setdefault("tenants", 2)
    kwargs.setdefault("gigabytes", 0.1)
    kwargs.setdefault("root_seed", 0)
    return FleetSoakConfig(**kwargs)


class TestFleetSoak:
    def test_invariants_hold_under_chaos(self, tmp_path):
        report = run_fleet_soak(small_config(), out_dir=tmp_path)
        assert report["all_passed"], report["cases"]
        case = report["cases"][0]
        assert case["completed"] == case["admitted"] == 8
        assert case["unrecovered_jobs"] == []
        for name in (
            "no_data_loss", "all_recovered", "no_starvation", "capacity_respected",
            "breaker_transitions_legal", "fair_goodput", "deterministic",
        ):
            assert case["invariants"][name], name

    def test_determinism_check_compares_fingerprints(self, tmp_path):
        report = run_fleet_soak(small_config(), out_dir=tmp_path)
        assert report["cases"][0]["invariants"]["deterministic"]
        # And the whole soak is reproducible from the root seed.
        replay = run_fleet_soak(small_config(), out_dir=tmp_path / "again")
        assert (
            replay["cases"][0]["fingerprint"] == report["cases"][0]["fingerprint"]
        )

    def test_artifacts_land_in_out_dir(self, tmp_path):
        report = run_fleet_soak(small_config(), out_dir=tmp_path)
        assert (tmp_path / "fleet_soak_report.json").exists()
        assert (tmp_path / "fleet000" / "fleet_report.json").exists()
        assert (tmp_path / "fleet000" / "case.json").exists()
        assert report["report_path"] == str(tmp_path / "fleet_soak_report.json")

    def test_quick_preset_is_ci_scale(self):
        config = FleetSoakConfig.quick(root_seed=3)
        assert config.transfers >= 32
        assert config.tenants >= 4
        assert config.determinism_check

    def test_render_report(self, tmp_path):
        report = run_fleet_soak(small_config(), out_dir=tmp_path)
        text = render_fleet_soak_report(report)
        assert "fleet soak" in text
        assert "ALL INVARIANTS HELD" in text
        assert "deterministic" in text
