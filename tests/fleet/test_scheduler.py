"""FleetScheduler integration: fairness, chaos recovery, determinism, typed failure."""

import pytest

from repro import obs
from repro.fleet import (
    FleetConfig,
    FleetScheduler,
    JobFaultProfile,
    Priority,
    SliceOutcome,
    TenantSpec,
    TransferRequest,
)

QUIET = JobFaultProfile(stalls=False, corruption=False, crashes=False)
CHAOS = JobFaultProfile(stall_probability=0.8, corruption_probability=0.6, max_crashes=1)


def run_fleet(tmp_path, *, tenants, requests, **kwargs):
    kwargs.setdefault("quantum", 10.0)
    kwargs.setdefault("stall_intervals", 4)
    kwargs.setdefault("horizon", 2400.0)
    config = FleetConfig(tenants=tenants, **kwargs)
    return FleetScheduler(config, requests, tmp_path / "jobs").run()


def equal_requests(n, tenants, gb=0.25, priority=Priority.BATCH):
    return [
        TransferRequest(tenant=tenants[i % len(tenants)], gigabytes=gb,
                        priority=priority, name=f"r{i}")
        for i in range(n)
    ]


class TestQuietFleet:
    def test_all_complete_and_invariants_hold(self, tmp_path):
        report = run_fleet(
            tmp_path,
            tenants=(TenantSpec("a"), TenantSpec("b")),
            requests=equal_requests(6, ["a", "b"]),
            seed=1,
            faults=QUIET,
        )
        assert report["all_passed"]
        assert report["unrecovered_jobs"] == []
        assert all(j["state"] == "completed" for j in report["jobs"])
        assert all(j["incidents"] == [] for j in report["jobs"])

    def test_equal_weights_equal_goodput(self, tmp_path):
        report = run_fleet(
            tmp_path,
            tenants=(TenantSpec("a"), TenantSpec("b"), TenantSpec("c")),
            requests=equal_requests(9, ["a", "b", "c"]),
            seed=2,
            faults=QUIET,
        )
        rates = [stats["goodput_bytes_per_s"] for stats in report["tenants"].values()]
        assert min(rates) > 0
        assert max(rates) / min(rates) < 1.5

    def test_allocation_never_exceeds_capacity(self, tmp_path):
        report = run_fleet(
            tmp_path,
            tenants=(TenantSpec("a"), TenantSpec("b")),
            requests=equal_requests(8, ["a", "b"]),
            seed=3,
            faults=QUIET,
            max_parallel=8,
        )
        assert report["invariants"]["capacity_respected"]
        assert report["max_round_allocation"] <= report["config"]["capacity_bytes_per_s"] * (
            1 + 1e-9
        )


class TestChaosFleet:
    def test_recovers_everything_under_faults(self, tmp_path):
        report = run_fleet(
            tmp_path,
            tenants=(TenantSpec("a"), TenantSpec("b")),
            requests=equal_requests(8, ["a", "b"]),
            seed=5,
            faults=CHAOS,
        )
        assert report["all_passed"], report["invariants"]
        assert sum(len(j["incidents"]) for j in report["jobs"]) > 0
        assert all(
            j["breaker"]["transitions"] == [] or j["breaker"]["times_opened"] >= 0
            for j in report["jobs"]
        )

    def test_same_seed_identical_fingerprint(self, tmp_path):
        def once(sub):
            return run_fleet(
                tmp_path / sub,
                tenants=(TenantSpec("a"), TenantSpec("b")),
                requests=equal_requests(6, ["a", "b"]),
                seed=9,
                faults=CHAOS,
            )

        first, second = once("one"), once("two")
        assert first["fingerprint"] == second["fingerprint"]
        assert first["jobs"] == second["jobs"]

    def test_different_seed_different_fingerprint(self, tmp_path):
        reports = [
            run_fleet(
                tmp_path / str(seed),
                tenants=(TenantSpec("a"),),
                requests=equal_requests(4, ["a"]),
                seed=seed,
                faults=CHAOS,
            )
            for seed in (1, 2)
        ]
        assert reports[0]["fingerprint"] != reports[1]["fingerprint"]


class TestTokenBucketThrottling:
    def test_rate_limited_tenant_gets_less(self, tmp_path):
        report = run_fleet(
            tmp_path,
            tenants=(
                TenantSpec("slow", rate_mbps=150.0, burst_bytes=2e8),
                TenantSpec("fast"),
            ),
            requests=equal_requests(8, ["slow", "fast"]),
            seed=4,
            faults=QUIET,
        )
        slow = report["tenants"]["slow"]["goodput_bytes_per_s"]
        fast = report["tenants"]["fast"]["goodput_bytes_per_s"]
        assert slow < fast
        # The throttle holds on average (generous slack for burst credit).
        assert slow * 8 / 1e6 < 150.0 * 1.5


class TestPriorityAndPreemption:
    def test_interactive_preempts_best_effort(self, tmp_path):
        # 3 GB at the ~125 MB/s link ≈ 24 s, so the best-effort job is still
        # mid-flight when the interactive one arrives at the t=10 round.
        requests = [
            TransferRequest(tenant="a", gigabytes=3.0,
                            priority=Priority.BEST_EFFORT, name="be"),
            TransferRequest(tenant="a", gigabytes=3.0,
                            priority=Priority.INTERACTIVE, submit_at=10.0, name="it"),
        ]
        report = run_fleet(
            tmp_path,
            tenants=(TenantSpec("a", max_concurrency=1),),
            requests=requests,
            seed=6,
            faults=QUIET,
            max_parallel=1,
        )
        best_effort, interactive = report["jobs"][0], report["jobs"][1]
        assert best_effort["priority"] == int(Priority.BEST_EFFORT)
        assert best_effort["preempted"] > 0
        assert report["tenants"]["a"]["preemptions"] > 0
        # The interactive job finished first despite arriving later.
        assert interactive["completed_at"] < best_effort["completed_at"]
        assert report["all_passed"]


class TestAdmission:
    def test_overflow_is_rejected_typed(self, tmp_path):
        report = run_fleet(
            tmp_path,
            tenants=(TenantSpec("a"),),
            requests=equal_requests(6, ["a"], gb=0.1),
            seed=7,
            faults=QUIET,
            admission_limit=4,
        )
        assert report["admission"]["admitted"] == 4
        assert report["admission"]["rejected"] == 2
        reasons = [d["reason"] for d in report["admission"]["decisions"] if not d["admitted"]]
        assert reasons == ["queue_full", "queue_full"]

    def test_unknown_tenant_rejected(self, tmp_path):
        requests = [
            TransferRequest(tenant="a", gigabytes=0.1),
            TransferRequest(tenant="ghost", gigabytes=0.1),
        ]
        report = run_fleet(
            tmp_path, tenants=(TenantSpec("a"),), requests=requests, seed=8, faults=QUIET
        )
        rejected = [d for d in report["admission"]["decisions"] if not d["admitted"]]
        assert len(rejected) == 1
        assert rejected[0]["reason"] == "unknown_tenant"


class TestTypedFailure:
    def test_retry_budget_exhaustion_is_typed(self, tmp_path):
        config = FleetConfig(
            tenants=(TenantSpec("a"),), seed=0, retry_budget=1.0, faults=QUIET
        )
        scheduler = FleetScheduler(
            config, [TransferRequest(tenant="a", gigabytes=0.1)], tmp_path / "jobs"
        )
        scheduler._admit(0.0)
        entry = scheduler.entries[0]
        # Synthetic incident: backoff (>= 3 s undithered base 4.0) always
        # lands past the 1 s budget, so the job fails with the typed reason.
        scheduler._handle_outcome(
            entry, SliceOutcome("incident", 10.0, incident_kind="stall"), 10.0
        )
        assert entry.state == "failed"
        assert entry.failure == "retry_budget_exhausted"
        report = scheduler._report()
        assert report["unrecovered_jobs"] == [0]
        assert not report["all_passed"]

    def test_fleet_horizon_fails_unfinished_jobs(self, tmp_path):
        report = run_fleet(
            tmp_path,
            tenants=(TenantSpec("a"),),
            requests=equal_requests(4, ["a"], gb=1.0),
            seed=1,
            faults=QUIET,
            horizon=20.0,
        )
        failed = [j for j in report["jobs"] if j["state"] == "failed"]
        assert failed
        assert all(j["failure"] in ("fleet_horizon", "timed_out") for j in failed)
        assert not report["all_passed"]
        assert report["unrecovered_jobs"]


class TestObsIntegration:
    def test_fleet_metrics_merge_into_the_session(self, tmp_path):
        with obs.session(tmp_path / "obs", label="fleet-test"):
            run_fleet(
                tmp_path,
                tenants=(TenantSpec("a"), TenantSpec("b")),
                requests=equal_requests(4, ["a", "b"], gb=0.1),
                seed=2,
                faults=QUIET,
            )
            registry = obs.active().registry
            assert "fleet/bytes_verified" in registry
            assert "fleet/slices" in registry
            family = registry.counter("fleet/bytes_verified", label_names=("tenant",))
            per_tenant = {
                child.labels["tenant"]: child.value for child in family.children()
            }
            assert per_tenant["a"] == pytest.approx(0.2e9, rel=0.01)
            assert per_tenant["b"] == pytest.approx(0.2e9, rel=0.01)
