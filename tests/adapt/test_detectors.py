"""Seeded property tests for the drift detectors.

The bounds here are the contract the adaptation loop relies on: under
stationary noise the monitor must stay quiet (bounded false-positive
rate over 1k-draw sweeps), under an injected ramp it must fire within a
small latency, and results must be invariant to the worker-pool size
(seeds are a pure function of ``spawn_key``).
"""

import numpy as np
import pytest

from repro.adapt import DriftMonitor, DriftMonitorConfig, PageHinkley, WindowedCusum
from repro.parallel.pool import ParallelMap
from repro.parallel.seeds import spawn_key

ROOT_SEED = 1234
SWEEP_CASES = 100
DRAWS = 1000
REL_NOISE = 0.05  # relative throughput noise, same order as the emulator's


def _stationary_fired(case: int) -> bool:
    """One 1k-draw stationary sweep; True if the monitor false-fires."""
    rng = np.random.default_rng(spawn_key(ROOT_SEED, (case,)))
    monitor = DriftMonitor()
    for _ in range(DRAWS):
        throughput = float(rng.normal(1000.0, 1000.0 * REL_NOISE))
        if monitor.update(throughput=throughput, stalled=False, retried=False).drifted:
            return True
    return False


def _ramp_latency(case: int) -> int | None:
    """Samples from ramp onset to alarm (None = never fired)."""
    rng = np.random.default_rng(spawn_key(ROOT_SEED, (1, case)))
    monitor = DriftMonitor()
    onset, ramp = 20, 8
    for i in range(onset + 60):
        scale = 1.0 if i < onset else max(0.5, 1.0 - 0.5 * (i - onset) / ramp)
        throughput = float(rng.normal(1000.0 * scale, 1000.0 * REL_NOISE))
        if monitor.update(throughput=throughput, stalled=False, retried=False).drifted:
            return i - onset
    return None


def test_false_positive_rate_bounded_under_stationary_noise():
    fired = sum(_stationary_fired(case) for case in range(SWEEP_CASES))
    assert fired / SWEEP_CASES <= 0.05, f"{fired}/{SWEEP_CASES} stationary sweeps false-fired"


def test_detection_latency_bounded_under_ramps():
    latencies = [_ramp_latency(case) for case in range(SWEEP_CASES)]
    assert all(lat is not None for lat in latencies), "a ramp went undetected"
    assert max(latencies) <= 30, f"worst detection latency {max(latencies)} samples"


@pytest.mark.parametrize("workers", [2, 4])
def test_sweep_results_invariant_to_pool_size(workers):
    serial = [_ramp_latency(case) for case in range(8)]
    pooled = ParallelMap(_ramp_latency, workers=workers).map_values(list(range(8)))
    assert pooled == serial


def test_page_hinkley_ignores_non_finite_samples():
    ph = PageHinkley()
    for _ in range(20):
        ph.update(1000.0)
    assert ph.update(float("nan")) is False
    for _ in range(20):
        assert not ph.update(1000.0)


def test_page_hinkley_direction_up():
    ph = PageHinkley(direction="up")
    for _ in range(10):
        ph.update(100.0)
    for _ in range(10):
        ph.update(300.0)
    assert ph.fired and ph.fired_at_sample is not None


def test_cusum_fires_on_indicator_step_and_records_sample():
    cusum = WindowedCusum(threshold=4.0, drift=0.5, reference_window=8, direction="up")
    for _ in range(8):
        cusum.update(0.0)
    for i in range(8):
        if cusum.update(1.0):
            break
    assert cusum.fired
    assert cusum.fired_at_sample is not None and cusum.fired_at_sample <= 16


def test_monitor_counts_rising_edges_not_alarm_intervals():
    monitor = DriftMonitor(DriftMonitorConfig(warmup=4))
    for _ in range(4):
        monitor.update(throughput=1000.0, stalled=False, retried=False)
    for _ in range(30):
        monitor.update(throughput=200.0, stalled=False, retried=False)
    assert monitor.detections == 1


def test_rebaseline_rearms_against_current_regime():
    monitor = DriftMonitor(DriftMonitorConfig(warmup=4))
    for _ in range(4):
        monitor.update(throughput=1000.0, stalled=False, retried=False)
    for _ in range(30):
        monitor.update(throughput=200.0, stalled=False, retried=False)
    monitor.rebaseline()
    assert monitor.rebaselines == 1
    for _ in range(30):
        signal = monitor.update(throughput=200.0, stalled=False, retried=False)
    assert not signal.drifted, "rebaselined monitor re-fired on the old drift"


def test_detector_config_validation():
    with pytest.raises(ValueError):
        PageHinkley(direction="sideways")
    with pytest.raises(ValueError):
        PageHinkley(delta=-0.1)
    with pytest.raises(ValueError):
        WindowedCusum(direction="diagonal")
