"""Shadow model fitting and the §V-C promotion gate."""

import pytest

from repro.adapt import ShadowEvaluator, ThroughputModel
from repro.core.finetune import promote_if_better


def test_model_predict_linear_then_cap_per_stage():
    model = ThroughputModel(tpt=(100.0, 50.0, 80.0), cap=(450.0, 600.0, 1000.0))
    assert model.predict((4, 4, 4)) == (400.0, 200.0, 320.0)
    # The cap binds independently per stage.
    assert model.predict((10, 10, 10)) == (450.0, 500.0, 800.0)


def test_fit_requires_min_probes_and_live_stages():
    evaluator = ShadowEvaluator(min_probes=4)
    assert evaluator.fit() is None
    for _ in range(4):
        evaluator.record((5, 5, 5), (500.0, 0.0, 500.0))  # silent network stage
    assert evaluator.fit() is None
    evaluator.reset()
    for _ in range(4):
        evaluator.record((5, 5, 5), (500.0, 500.0, 500.0))
    model = evaluator.fit()
    assert model is not None
    assert model.tpt == (100.0, 100.0, 100.0)
    assert model.cap == pytest.approx((575.0, 575.0, 575.0))


def test_fit_median_survives_one_stalled_probe():
    evaluator = ShadowEvaluator(min_probes=4)
    for _ in range(6):
        evaluator.record((5, 5, 5), (500.0, 500.0, 500.0))
    evaluator.record((5, 5, 5), (10.0, 10.0, 10.0))  # one stalled outlier
    model = evaluator.fit()
    assert model.tpt == (100.0, 100.0, 100.0)


def test_evaluate_applies_promotion_margin():
    evaluator = ShadowEvaluator(min_probes=4, margin=0.05)
    for _ in range(8):
        evaluator.record((5, 5, 5), (500.0, 500.0, 500.0))
    # More threads push every stage to its cap: a clear modelled win.
    verdict = evaluator.evaluate((5, 5, 5), (7, 7, 7))
    assert verdict.promoted and verdict.candidate_score > verdict.incumbent_score
    # The incumbent never loses to itself (margin > 0).
    assert not evaluator.evaluate((5, 5, 5), (5, 5, 5)).promoted
    assert evaluator.evaluations == 2


def test_evaluate_not_ready_rejects():
    evaluator = ShadowEvaluator(min_probes=4)
    verdict = evaluator.evaluate((5, 5, 5), (6, 6, 6))
    assert not verdict.promoted and verdict.reason == "model_not_ready"


def test_promote_if_better_margins():
    # margin=0 reproduces the paper's plain §V-C comparison.
    assert promote_if_better(10.0, 10.0)
    assert not promote_if_better(10.0, 9.99)
    # A positive margin demands a clear win.
    assert not promote_if_better(10.0, 10.4, margin=0.05)
    assert promote_if_better(10.0, 10.5, margin=0.05)
    with pytest.raises(ValueError):
        promote_if_better(1.0, 2.0, margin=-0.1)
