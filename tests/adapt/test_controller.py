"""AdaptiveController: passthrough identity, promotion, rollback, resets."""

from repro.adapt import (
    CORRECTING,
    NOMINAL,
    ROLLED_BACK,
    AdaptConfig,
    AdaptiveController,
    SafetyEnvelope,
    transitions_legal,
)
from repro.baselines import StaticController
from repro.transfer.engine import Observation
from repro.transfer.guarded import GuardedController

BASE = (5, 5, 5)


def make_obs(goodput: float, elapsed: float, bytes_total: float) -> Observation:
    return Observation(
        threads=BASE,
        throughputs=(goodput, goodput, goodput),
        sender_free=4e9,
        receiver_free=4e9,
        sender_capacity=8e9,
        receiver_capacity=8e9,
        elapsed=elapsed,
        bytes_written_total=bytes_total,
    )


def stream(controller, goodputs, *, stall_from=None):
    """Feed a goodput sequence; bytes advance unless the index stalls."""
    proposals = []
    bytes_total = 0.0
    for i, goodput in enumerate(goodputs):
        if stall_from is None or i < stall_from:
            bytes_total += max(goodput, 0.0) * 1e6
        proposals.append(controller.propose(make_obs(goodput, float(i), bytes_total)))
    return proposals


def drifting(n_before: int = 12, n_after: int = 40):
    return [1000.0] * n_before + [400.0] * n_after


class TestPassthrough:
    def test_disabled_is_byte_identical_to_bare_guarded(self):
        adaptive = AdaptiveController(
            StaticController(BASE), AdaptConfig(enabled=False)
        )
        bare = GuardedController(StaticController(BASE))
        goodputs = drifting()
        assert stream(adaptive, goodputs) == stream(bare, goodputs)
        # No adaptation state accrued: nothing to perturb a fingerprint.
        report = adaptive.report()
        assert report["state"] == NOMINAL
        assert report["detections"] == 0 and not report["events"]

    def test_disabled_reset_only_resets_wrapped(self):
        adaptive = AdaptiveController(
            StaticController(BASE), AdaptConfig(enabled=False)
        )
        adaptive.reset()
        adaptive.reset()
        assert adaptive.resets == 0

    def test_bare_controller_is_wrapped_in_guarded(self):
        adaptive = AdaptiveController(StaticController(BASE))
        assert isinstance(adaptive.guarded, GuardedController)
        already = GuardedController(StaticController(BASE))
        assert AdaptiveController(already).guarded is already


class TestAdaptationLoop:
    def config(self):
        return AdaptConfig(envelope=SafetyEnvelope(max_delta_per_interval=2))

    def test_drift_detected_then_shadow_promoted(self):
        adaptive = AdaptiveController(StaticController(BASE), self.config())
        proposals = stream(adaptive, drifting())
        report = adaptive.report()
        assert report["detections"] >= 1
        assert report["promotions"] >= 1
        assert report["state"] in (CORRECTING, NOMINAL)
        assert transitions_legal(
            [(tr["src"], tr["dst"]) for tr in report["transitions"]]
        )
        # The armed residual moved proposals off the frozen base, inside
        # the envelope's rails and per-interval step cap.
        assert proposals[-1] != BASE
        for prev, cur in zip(proposals, proposals[1:]):
            assert all(abs(c - p) <= 2 for p, c in zip(prev, cur))
            assert all(1 <= c <= 30 for c in cur)

    def test_stall_during_correction_rolls_back_to_guarded(self):
        adaptive = AdaptiveController(StaticController(BASE), self.config())
        goodputs = drifting(12, 12)
        stream(adaptive, goodputs)
        assert adaptive.guard.state == CORRECTING
        # Flat bytes for >= rollback_stall_intervals: the watchdog fires.
        proposals = stream(adaptive, [400.0] * 4, stall_from=0)
        report = adaptive.report()
        assert report["rollbacks"] == 1
        assert report["state"] == ROLLED_BACK
        assert report["residual"] == [0, 0, 0]
        # Rolled back: proposals come verbatim from the guarded stack.
        assert proposals[-1] == BASE

    def test_recovery_after_rollback_returns_to_nominal(self):
        adaptive = AdaptiveController(StaticController(BASE), self.config())
        stream(adaptive, drifting(12, 12))
        stream(adaptive, [400.0] * 4, stall_from=0)
        assert adaptive.guard.state == ROLLED_BACK
        stream(adaptive, [400.0] * 8)
        assert adaptive.guard.state == NOMINAL
        assert adaptive.monitor.rebaselines >= 1

    def test_suspicion_expires_without_a_winning_candidate(self):
        # Keep the candidate from winning: every stage already at its rail.
        config = AdaptConfig(
            envelope=SafetyEnvelope(max_threads=BASE), suspect_patience=6
        )
        adaptive = AdaptiveController(StaticController(BASE), config)
        stream(adaptive, drifting(12, 20))
        report = adaptive.report()
        assert report["promotions"] == 0
        assert report["state"] == NOMINAL
        assert any(
            tr["reason"] == "suspicion_expired" for tr in report["transitions"]
        )

    def test_reset_preserves_adaptation_state_and_counts_retries(self):
        adaptive = AdaptiveController(StaticController(BASE), self.config())
        stream(adaptive, drifting(12, 12))
        state_before = adaptive.guard.state
        detections_before = adaptive.monitor.detections
        adaptive.reset()
        adaptive.reset()
        assert adaptive.guard.state == state_before
        assert adaptive.monitor.detections == detections_before
        assert adaptive.resets == 2
        assert adaptive._pending_retry  # the retry drift channel's next sample

    def test_two_identical_streams_produce_identical_reports(self):
        goodputs = drifting()
        reports = []
        for _ in range(2):
            adaptive = AdaptiveController(StaticController(BASE), self.config())
            stream(adaptive, goodputs)
            reports.append(adaptive.report())
        assert reports[0] == reports[1]
