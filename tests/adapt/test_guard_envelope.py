"""RollbackGuard audit-log semantics, SafetyEnvelope clamping, corrector."""

import pytest

from repro.adapt import (
    CORRECTING,
    DRIFT_SUSPECTED,
    LEGAL_TRANSITIONS,
    NOMINAL,
    ROLLED_BACK,
    ResidualCorrector,
    RollbackGuard,
    SafetyEnvelope,
    ShadowEvaluator,
    transitions_legal,
)
from repro.emulator.testbed import TestbedConfig
from repro.utils.errors import GuardTransitionError


# ------------------------------------------------------------------- guard
def test_guard_full_lifecycle_is_legal_and_audited():
    guard = RollbackGuard(name="t")
    guard.suspect(1.0, "drift")
    guard.promote(2.0, "shadow")
    guard.rollback(3.0, "regression")
    guard.recover(4.0, "clean")
    guard.suspect(5.0, "drift")
    guard.clear(6.0, "expired")
    assert guard.state == NOMINAL
    assert guard.promotions == 1 and guard.rollbacks == 1
    assert transitions_legal(guard.transitions)
    assert [tr.to_dict()["dst"] for tr in guard.transitions] == [
        DRIFT_SUSPECTED, CORRECTING, ROLLED_BACK, NOMINAL, DRIFT_SUSPECTED, NOMINAL,
    ]


@pytest.mark.parametrize(
    "method", ["promote", "rollback", "recover", "clear"]
)
def test_guard_rejects_illegal_hops_from_nominal(method):
    guard = RollbackGuard()
    with pytest.raises(GuardTransitionError):
        getattr(guard, method)(0.0, "illegal")
    assert guard.state == NOMINAL and not guard.transitions


def test_guard_state_codes_monotone_labels():
    guard = RollbackGuard()
    assert guard.state_code == 0
    guard.suspect(0.0, "d")
    assert guard.state_code == 1
    guard.promote(1.0, "p")
    assert guard.state_code == 2
    guard.rollback(2.0, "r")
    assert guard.state_code == 3


def test_transitions_legal_validator():
    assert transitions_legal([])
    assert transitions_legal([(NOMINAL, DRIFT_SUSPECTED), (DRIFT_SUSPECTED, CORRECTING)])
    # Illegal pair.
    assert not transitions_legal([(NOMINAL, CORRECTING)])
    # Legal pairs but a non-contiguous chain.
    assert not transitions_legal(
        [(NOMINAL, DRIFT_SUSPECTED), (CORRECTING, ROLLED_BACK)]
    )
    # Legal pair that does not start from the birth state.
    assert not transitions_legal([(DRIFT_SUSPECTED, CORRECTING)])
    assert all(pair in LEGAL_TRANSITIONS for pair in [(CORRECTING, ROLLED_BACK)])


# ---------------------------------------------------------------- envelope
def test_envelope_hard_rails_and_step_cap():
    env = SafetyEnvelope(max_threads=(10, 10, 10), max_delta_per_interval=2)
    counts: dict[str, int] = {}
    # No previous proposal: only the hard rails apply.
    assert env.clamp((40, 0, 5), None, counts) == (10, 1, 5)
    assert counts == {"read": 1, "network": 1}
    # With a previous proposal the per-interval delta cap applies first.
    assert env.clamp((9, 9, 9), (5, 5, 5), counts) == (7, 7, 7)
    assert counts["write"] == 1
    # In-envelope proposals pass through untouched.
    before = dict(counts)
    assert env.clamp((6, 6, 6), (5, 5, 5), counts) == (6, 6, 6)
    assert counts == before


def test_envelope_from_testbed_config_uses_thread_ceiling():
    config = TestbedConfig()
    env = SafetyEnvelope.from_testbed_config(config)
    limit = int(getattr(config, "max_threads", 30))
    assert env.max_threads == (limit, limit, limit)


def test_envelope_validation():
    with pytest.raises(ValueError):
        SafetyEnvelope(min_threads=(0, 1, 1))
    with pytest.raises(ValueError):
        SafetyEnvelope(max_threads=(2, 2, 2), min_threads=(3, 3, 3))


# --------------------------------------------------------------- corrector
def _warmed_evaluator() -> ShadowEvaluator:
    evaluator = ShadowEvaluator(min_probes=4)
    for _ in range(8):
        evaluator.record((5, 5, 5), (500.0, 500.0, 500.0))
    return evaluator


def test_corrector_search_is_deterministic_and_bounded():
    evaluator = _warmed_evaluator()
    model = evaluator.fit()
    corrector = ResidualCorrector(max_residual=4)
    envelope = SafetyEnvelope(max_threads=(8, 8, 8))
    first = corrector.search(evaluator, model, (5, 5, 5), envelope)
    second = corrector.search(evaluator, model, (5, 5, 5), envelope)
    assert first == second
    residual, base_score, best_score = first
    assert best_score >= base_score
    assert all(abs(r) <= 4 for r in residual)
    assert all(1 <= 5 + r <= 8 for r in residual)


def test_corrector_apply_identity_until_armed():
    corrector = ResidualCorrector()
    assert corrector.apply((5, 5, 5)) == (5, 5, 5)
    corrector.arm((2, -1, 0))
    assert corrector.apply((5, 5, 5)) == (7, 4, 5)
    corrector.disarm()
    assert corrector.apply((5, 5, 5)) == (5, 5, 5)
    assert corrector.residual == (0, 0, 0)
