"""Global per-test timeout: a deadlocked scheduler must fail CI, not hang it.

``pytest-timeout`` is not a dependency, so this uses a plain POSIX
``SIGALRM`` itimer around each test call.  Default 300 s per test,
overridable with ``REPRO_TEST_TIMEOUT`` (seconds; ``0`` disables).  The
alarm only arms on the main thread of a Unix platform — anywhere else the
hook is a no-op.  Worker processes forked by ``repro.parallel`` are safe:
POSIX itimers are not inherited across ``fork()``.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

_DEFAULT_TIMEOUT = 300.0


def _timeout_seconds() -> float:
    raw = os.environ.get("REPRO_TEST_TIMEOUT", "")
    try:
        return float(raw) if raw else _DEFAULT_TIMEOUT
    except ValueError:
        return _DEFAULT_TIMEOUT


def _can_use_alarm() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    limit = _timeout_seconds()
    if limit <= 0 or not _can_use_alarm():
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:.0f}s global timeout "
            f"(set REPRO_TEST_TIMEOUT to change it): {item.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
