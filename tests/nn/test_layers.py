"""Layers: Linear, LayerNorm, activations, Sequential."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn import Identity, LayerNorm, Linear, ReLU, Sequential, Tanh


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 7, rng=0)
        out = layer(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 7)

    def test_single_sample(self):
        layer = Linear(4, 7, rng=0)
        assert layer(Tensor(np.zeros(4))).shape == (7,)

    def test_bias_optional(self):
        layer = Linear(3, 3, rng=0, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_orthogonal_weight_init(self):
        layer = Linear(64, 64, rng=0, gain=1.0)
        w = layer.weight.data
        np.testing.assert_allclose(w.T @ w, np.eye(64), atol=1e-10)

    def test_affine_correctness(self):
        layer = Linear(2, 2, rng=0)
        layer.weight.data[...] = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias.data[...] = np.array([10.0, 20.0])
        out = layer(Tensor(np.array([1.0, 1.0])))
        np.testing.assert_allclose(out.data, [14.0, 26.0])

    def test_gradients_flow_to_params(self):
        layer = Linear(3, 2, rng=0)
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = LayerNorm(6)
        x = Tensor(np.random.default_rng(0).standard_normal((8, 6)) * 5 + 2)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)

    def test_learnable_affine(self):
        ln = LayerNorm(3)
        ln.scale.data[...] = 2.0
        ln.shift.data[...] = 1.0
        out = ln(Tensor(np.array([[1.0, 2.0, 3.0]]))).data
        assert out.mean() == pytest.approx(1.0, abs=1e-9)

    def test_two_parameters(self):
        assert len(LayerNorm(4).parameters()) == 2


class TestActivations:
    def test_tanh_module(self):
        out = Tanh()(Tensor(np.array([0.0, 100.0])))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-9)

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_identity(self):
        x = Tensor(np.arange(3.0))
        assert Identity()(x) is x


class TestSequential:
    def test_chaining(self):
        net = Sequential(Linear(2, 4, rng=0), Tanh(), Linear(4, 1, rng=1))
        assert net(Tensor(np.zeros((3, 2)))).shape == (3, 1)

    def test_collects_parameters(self):
        net = Sequential(Linear(2, 4, rng=0), Linear(4, 1, rng=1))
        assert len(net.parameters()) == 4

    def test_len_getitem(self):
        net = Sequential(Tanh(), ReLU())
        assert len(net) == 2
        assert isinstance(net[1], ReLU)
