"""Optimizers: SGD, Adam, gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, clip_grad_norm
from repro.nn.module import Parameter


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def minimize(opt, p, steps):
    for _ in range(steps):
        opt.zero_grad()
        ((p - 2.0) * (p - 2.0)).sum().backward()
        opt.step()
    return float(p.data[0])


class TestSGD:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        assert minimize(SGD([p], lr=0.1), p, 100) == pytest.approx(2.0, abs=1e-4)

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        minimize(SGD([p1], lr=0.01), p1, 30)
        minimize(SGD([p2], lr=0.01, momentum=0.9), p2, 30)
        assert abs(p2.data[0] - 2.0) < abs(p1.data[0] - 2.0)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()  # no backward yet: must not crash or move
        assert p.data[0] == 5.0


class TestAdam:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        assert minimize(Adam([p], lr=0.1), p, 300) == pytest.approx(2.0, abs=1e-3)

    def test_bias_correction_first_step(self):
        # With bias correction, the very first step is ≈ lr in the gradient
        # direction regardless of gradient magnitude.
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.5)
        (p * 1000.0).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(0.5, abs=1e-6)

    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(0)
        p = Parameter(rng.standard_normal(4))
        ref = p.data.copy()
        opt = Adam([p], lr=0.01)
        m = np.zeros(4)
        v = np.zeros(4)
        for step in range(1, 6):
            opt.zero_grad()
            (p * p).sum().backward()
            g = p.grad.copy()
            opt.step()
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            m_hat = m / (1 - 0.9**step)
            v_hat = v / (1 - 0.999**step)
            ref = ref - 0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
            np.testing.assert_allclose(p.data, ref, atol=1e-12)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([])


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([1.0]))
        (p * 3.0).sum().backward()
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(3.0)
        assert p.grad[0] == pytest.approx(3.0)

    def test_clips_to_max_norm(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        (a * 3.0 + b * 4.0).sum().backward()  # global norm = 5
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)
        # Direction preserved.
        assert a.grad[0] / b.grad[0] == pytest.approx(3.0 / 4.0)

    def test_handles_missing_grads(self):
        p = Parameter(np.ones(2))
        assert clip_grad_norm([p], 1.0) == 0.0
