"""Weight initialization schemes."""

import numpy as np

from repro.nn import init


class TestOrthogonal:
    def test_square_orthogonal(self):
        w = init.orthogonal((32, 32), np.random.default_rng(0))
        np.testing.assert_allclose(w @ w.T, np.eye(32), atol=1e-10)

    def test_tall_matrix_columns_orthonormal(self):
        w = init.orthogonal((64, 16), np.random.default_rng(0))
        np.testing.assert_allclose(w.T @ w, np.eye(16), atol=1e-10)

    def test_wide_matrix_rows_orthonormal(self):
        w = init.orthogonal((16, 64), np.random.default_rng(0))
        np.testing.assert_allclose(w @ w.T, np.eye(16), atol=1e-10)

    def test_gain_scales(self):
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        w1 = init.orthogonal((8, 8), rng1, gain=1.0)
        w2 = init.orthogonal((8, 8), rng2, gain=3.0)
        np.testing.assert_allclose(w2, 3.0 * w1)

    def test_deterministic(self):
        a = init.orthogonal((8, 4), np.random.default_rng(1))
        b = init.orthogonal((8, 4), np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestXavier:
    def test_bound(self):
        w = init.xavier_uniform((100, 50), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_shape(self):
        assert init.xavier_uniform((3, 7), np.random.default_rng(0)).shape == (3, 7)


class TestZeros:
    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((4,)), np.zeros(4))
