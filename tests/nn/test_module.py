"""Module base: registration, state dicts, copy."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential


class _Net(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(2, 3, rng=0)
        self.scale = Parameter(np.ones(3))

    def forward(self, x):
        return self.fc(x) * self.scale


class TestRegistration:
    def test_named_parameters_depth_first(self):
        names = [n for n, _ in _Net().named_parameters()]
        assert names == ["scale", "fc.weight", "fc.bias"]

    def test_num_parameters(self):
        assert _Net().num_parameters() == 2 * 3 + 3 + 3

    def test_nested_modules(self):
        net = Sequential(_Net(), _Net())
        assert len(net.parameters()) == 6


class TestStateDict:
    def test_roundtrip(self):
        a, b = _Net(), _Net()
        b.fc.weight.data[...] = 7.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.fc.weight.data, a.fc.weight.data)

    def test_state_dict_is_copy(self):
        net = _Net()
        state = net.state_dict()
        state["scale"][...] = 99.0
        assert net.scale.data[0] == 1.0

    def test_missing_key_raises(self):
        net = _Net()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = _Net()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = _Net()
        state = net.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_copy_from(self):
        a, b = _Net(), _Net()
        a.scale.data[...] = 5.0
        b.copy_from(a)
        np.testing.assert_array_equal(b.scale.data, 5.0)


class TestZeroGrad:
    def test_clears_all(self):
        net = _Net()
        from repro.autograd.tensor import Tensor

        net(Tensor(np.ones((2, 2)))).sum().backward()
        assert net.fc.weight.grad is not None
        net.zero_grad()
        assert net.fc.weight.grad is None
