"""Stacked-K engine vs the scalar PPOAgent oracle — exact, not approximate.

Every assertion here is ``==`` / ``array_equal``: the stacked forward,
hand-rolled backward, gradient clipping and Adam step must reproduce the
scalar agents bit-for-bit (see the bit-identity argument in
``repro/nn/stacked.py`` and DESIGN §17).  Reference agents are built with
the same seeds, stepped through identical rollouts, and compared on every
parameter after every update.
"""

import numpy as np
import pytest

from repro.core.ppo import PPOAgent, PPOConfig
from repro.nn.stacked import StackedPPOAgent


def tiny_config(**overrides) -> PPOConfig:
    defaults = dict(hidden_dim=8, policy_blocks=1, value_blocks=1, update_epochs=2)
    defaults.update(overrides)
    return PPOConfig(**defaults)


def _build(k: int, cfg: PPOConfig):
    seeds = [1000 + 7 * i for i in range(k)]
    reference = [PPOAgent(8, 3, cfg, rng=s) for s in seeds]
    stacked = StackedPPOAgent(8, 3, cfg, rngs=seeds)
    return reference, stacked


def _rollout(reference, stacked, rng, *, steps, episodes, active=None):
    """Feed identical transitions to both sides, asserting act equality."""
    k = stacked.k
    gamma = stacked.config.gamma
    indices = list(range(k)) if active is None else list(active)
    mask = None if active is None else np.isin(np.arange(k), indices)
    for _ in range(episodes):
        states = rng.uniform(0.0, 1.0, (k, 8))
        for _ in range(steps):
            want = {i: reference[i].act(states[i]) for i in indices}
            acts, lps = stacked.act_all(states, active=mask)
            rewards = rng.uniform(0.0, 1.0, k)
            for i in indices:
                assert np.array_equal(want[i][0], acts[i])
                assert want[i][1] == lps[i]
                reference[i].memory.store(states[i], want[i][0], want[i][1], rewards[i])
                stacked.members[i].memory.store(
                    states[i], acts[i].copy(), float(lps[i]), rewards[i]
                )
            states = rng.uniform(0.0, 1.0, (k, 8))
        for i in indices:
            reference[i].memory.end_episode(gamma)
            stacked.members[i].memory.end_episode(gamma)


def _assert_params_equal(reference, stacked):
    for i, ref in enumerate(reference):
        member = stacked.members[i]
        for net in ("policy", "value"):
            pairs = zip(
                getattr(ref, net).named_parameters(),
                getattr(member, net).named_parameters(),
            )
            for (name, want), (_, got) in pairs:
                assert np.array_equal(want.data, got.data), (i, net, name)


def _update_and_compare(reference, stacked, active):
    want_stats = {i: reference[i].update() for i in active}
    got_stats = stacked.update_all(np.asarray(active))
    for row, i in enumerate(active):
        reference[i].memory.clear()
        stacked.members[i].memory.clear()
        assert want_stats[i] == got_stats[row], i
    _assert_params_equal(reference, stacked)


@pytest.mark.parametrize("k", [1, 2, 7, 64])
def test_stacked_update_matches_scalar_oracle(k):
    """Forward, backward, clip and Adam agree on every parameter, K-wide."""
    cfg = tiny_config()
    reference, stacked = _build(k, cfg)
    rng = np.random.default_rng(3)
    _rollout(reference, stacked, rng, steps=4, episodes=2)
    _update_and_compare(reference, stacked, list(range(k)))


@pytest.mark.parametrize("batch", [1, 3, 10])
def test_stacked_update_across_batch_sizes(batch):
    """The stacked loss/backward handles any rollout length, including B=1."""
    cfg = tiny_config()
    reference, stacked = _build(3, cfg)
    rng = np.random.default_rng(11)
    _rollout(reference, stacked, rng, steps=batch, episodes=1)
    _update_and_compare(reference, stacked, [0, 1, 2])


def test_repeated_updates_keep_adam_state_identical():
    """Moment estimates and bias-correction counts stay in lockstep."""
    cfg = tiny_config(policy_blocks=2, update_epochs=3)
    reference, stacked = _build(4, cfg)
    rng = np.random.default_rng(5)
    for _ in range(3):
        _rollout(reference, stacked, rng, steps=5, episodes=1)
        _update_and_compare(reference, stacked, [0, 1, 2, 3])


def test_partial_active_gather_scatter():
    """Deactivated members' rows are untouched; active rows update exactly."""
    cfg = tiny_config()
    reference, stacked = _build(5, cfg)
    rng = np.random.default_rng(9)
    _rollout(reference, stacked, rng, steps=4, episodes=1)
    _update_and_compare(reference, stacked, [0, 1, 2, 3, 4])
    frozen = {
        i: [p.data.copy() for p in stacked.members[i].optimizer.parameters]
        for i in (1, 4)
    }
    active = [0, 2, 3]
    _rollout(reference, stacked, rng, steps=4, episodes=1, active=active)
    _update_and_compare(reference, stacked, active)
    for i, before in frozen.items():
        for want, got in zip(before, stacked.members[i].optimizer.parameters):
            assert np.array_equal(want, got.data), i


def test_diverged_step_counts_rejected():
    """The monotone-deactivation contract is asserted, not assumed."""
    cfg = tiny_config()
    reference, stacked = _build(2, cfg)
    rng = np.random.default_rng(2)
    _rollout(reference, stacked, rng, steps=3, episodes=1, active=[0])
    _update_and_compare(reference, stacked, [0])
    _rollout(reference, stacked, rng, steps=3, episodes=1)
    with pytest.raises(RuntimeError, match="step counts"):
        stacked.update_all(np.array([0, 1]))


def test_deterministic_act_all_matches_members():
    cfg = tiny_config()
    reference, stacked = _build(3, cfg)
    states = np.random.default_rng(0).uniform(0.0, 1.0, (3, 8))
    acts, _ = stacked.act_all(states, deterministic=True)
    for i, ref in enumerate(reference):
        want, _ = ref.act(states[i], deterministic=True)
        assert np.array_equal(want, acts[i])


def test_state_dict_round_trip_stays_bound_to_stack():
    """load_state_dict writes through the row views into stacked storage."""
    cfg = tiny_config()
    _, stacked = _build(2, cfg)
    states = np.random.default_rng(1).uniform(0.0, 1.0, (2, 8))
    acts, _ = stacked.act_all(states, deterministic=True)
    stacked.members[0].load_state_dict(stacked.members[1].state_dict())
    same_state = np.stack([states[1], states[1]])
    swapped, _ = stacked.act_all(same_state, deterministic=True)
    assert np.array_equal(swapped[0], swapped[1])
    via_member, _ = stacked.members[0].act(states[1], deterministic=True)
    assert np.array_equal(swapped[0], via_member)


def test_set_lr_progress_matches_scalar_annealing():
    cfg = tiny_config()
    reference, stacked = _build(1, cfg)
    for fraction in (0.0, 0.3, 1.0, 2.0):
        reference[0].set_lr_progress(fraction)
        stacked.set_lr_progress(fraction)
        assert stacked.lr == reference[0].optimizer.lr


def test_rejects_empty_population():
    with pytest.raises(ValueError):
        StackedPPOAgent(8, 3, tiny_config(), rngs=[])


def test_wide_hidden_preserves_scalar_strides_and_bits():
    """Regression: orthogonal() leaves wide (in < out) embed weights
    Fortran-ordered, and BLAS results depend on operand layout.  The
    stacked storage must keep every rebound row view on the scalar
    array's exact strides — and stay bit-identical through updates."""
    cfg = tiny_config(hidden_dim=32, policy_blocks=2)
    reference, stacked = _build(3, cfg)
    for ref, member in zip(reference, stacked.members):
        for (name, want), (_, got) in zip(
            ref.policy.named_parameters(), member.policy.named_parameters()
        ):
            assert want.data.strides == got.data.strides, name
    rng = np.random.default_rng(21)
    for _ in range(2):
        _rollout(reference, stacked, rng, steps=5, episodes=1)
        _update_and_compare(reference, stacked, [0, 1, 2])
