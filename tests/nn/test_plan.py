"""Compiled inference plans vs the Tensor forward — exact and Tensor-free.

``PolicyPlan`` / ``ValuePlan`` flatten a trained network into a raw-ndarray
op list with preallocated buffers.  They must (a) reproduce the autograd
forward bit-for-bit — action mean, sampling (same RNG stream), log-prob,
value — and (b) allocate zero ``Tensor`` objects on the hot path.
"""

import importlib

import numpy as np
import pytest

from repro.autograd.tensor import no_grad

tensor_mod = importlib.import_module("repro.autograd.tensor")
from repro.core.networks import PolicyNetwork, ValueNetwork
from repro.nn.plan import PlanUnsupported, PolicyPlan, ValuePlan


def _policy(**overrides) -> PolicyNetwork:
    defaults = dict(hidden_dim=16, num_blocks=2, rng=3)
    defaults.update(overrides)
    return PolicyNetwork(8, 3, **defaults)


def _states(n=25, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 2.0, (n, 8))


class TestPolicyPlan:
    def test_sampling_matches_tensor_path_bitwise(self):
        policy = _policy()
        plan = PolicyPlan(policy)
        for state in _states():
            rng_a = np.random.default_rng(42)
            rng_b = np.random.default_rng(42)
            with no_grad():
                dist = policy(state)
                want_action = dist.sample(rng_a)
                want_lp = float(dist.log_prob(want_action).data)
            action, lp = plan.act(state, rng_b)
            assert np.array_equal(action, want_action)
            assert lp == want_lp

    def test_deterministic_mode_matches_mode(self):
        policy = _policy(num_blocks=1)
        plan = PolicyPlan(policy)
        for state in _states(10, seed=1):
            with no_grad():
                want = policy(state).mode()
            action, _ = plan.act(state, np.random.default_rng(0), deterministic=True)
            assert np.array_equal(action, want)

    def test_reflects_in_place_weight_updates(self):
        """Plans deref param.data at call time: updates need no recompile."""
        policy = _policy(num_blocks=1)
        plan = PolicyPlan(policy)
        state = np.full(8, 0.25)
        before, _ = plan.act(state, np.random.default_rng(0), deterministic=True)
        for p in policy.parameters():
            p.data -= 0.05
        with no_grad():
            want = policy(state).mode()
        after, _ = plan.act(state, np.random.default_rng(0), deterministic=True)
        assert not np.array_equal(before, after)
        assert np.array_equal(after, want)

    def test_allocates_zero_tensors(self, monkeypatch):
        policy = _policy()
        plan = PolicyPlan(policy)
        state = np.zeros(8)
        plan.act(state, np.random.default_rng(0))  # warm any lazy state
        count = 0
        original = tensor_mod.Tensor.__init__

        def counting(self, *args, **kwargs):
            nonlocal count
            count += 1
            original(self, *args, **kwargs)

        monkeypatch.setattr(tensor_mod.Tensor, "__init__", counting)
        plan.act(state, np.random.default_rng(0))
        plan.act(state, np.random.default_rng(1), deterministic=True)
        assert count == 0

    def test_unsupported_structure_raises(self):
        class Doubled:
            pass

        with pytest.raises(PlanUnsupported):
            PolicyPlan(Doubled())


class TestValuePlan:
    def test_matches_tensor_path_bitwise(self):
        value = ValueNetwork(8, hidden_dim=16, num_blocks=2, rng=5)
        plan = ValuePlan(value)
        for state in _states(25, seed=2):
            with no_grad():
                want = float(value(state).data)
            assert plan(state) == want

    def test_allocates_zero_tensors(self, monkeypatch):
        value = ValueNetwork(8, hidden_dim=16, num_blocks=1, rng=5)
        plan = ValuePlan(value)
        count = 0
        original = tensor_mod.Tensor.__init__

        def counting(self, *args, **kwargs):
            nonlocal count
            count += 1
            original(self, *args, **kwargs)

        monkeypatch.setattr(tensor_mod.Tensor, "__init__", counting)
        plan(np.zeros(8))
        assert count == 0

    def test_unsupported_structure_raises(self):
        class Odd:
            pass

        with pytest.raises(PlanUnsupported):
            ValuePlan(Odd())
