"""Policy distributions: diagonal Gaussian and Categorical."""

import numpy as np
import pytest
from scipy import stats

from repro.autograd.tensor import Tensor
from repro.nn import Categorical, DiagonalGaussian


class TestDiagonalGaussian:
    def test_sample_statistics(self):
        rng = np.random.default_rng(0)
        d = DiagonalGaussian(Tensor(np.array([2.0, -1.0])), Tensor(np.log([0.5, 2.0])))
        samples = np.stack([d.sample(rng) for _ in range(4000)])
        np.testing.assert_allclose(samples.mean(axis=0), [2.0, -1.0], atol=0.1)
        np.testing.assert_allclose(samples.std(axis=0), [0.5, 2.0], atol=0.1)

    def test_mode_is_mean(self):
        d = DiagonalGaussian(Tensor(np.array([3.0])), Tensor(np.zeros(1)))
        assert d.mode()[0] == 3.0

    def test_log_prob_matches_scipy(self):
        rng = np.random.default_rng(1)
        mean, log_std = rng.standard_normal(3), rng.standard_normal(3) * 0.2
        x = rng.standard_normal(3)
        d = DiagonalGaussian(Tensor(mean), Tensor(log_std))
        expected = stats.norm.logpdf(x, loc=mean, scale=np.exp(log_std)).sum()
        assert float(d.log_prob(x).data) == pytest.approx(expected)

    def test_log_prob_batch_shape(self):
        d = DiagonalGaussian(Tensor(np.zeros((6, 3))), Tensor(np.zeros(3)))
        assert d.log_prob(np.zeros((6, 3))).shape == (6,)

    def test_entropy_matches_formula(self):
        log_std = np.array([-0.5, 0.0, 0.5])
        d = DiagonalGaussian(Tensor(np.zeros(3)), Tensor(log_std))
        expected = (log_std + 0.5 * np.log(2 * np.pi * np.e)).sum()
        assert float(d.entropy().data) == pytest.approx(expected)

    def test_log_prob_gradient_reaches_mean(self):
        mean = Tensor(np.zeros(2), requires_grad=True)
        d = DiagonalGaussian(mean, Tensor(np.zeros(2)))
        d.log_prob(np.array([1.0, -1.0])).backward()
        np.testing.assert_allclose(mean.grad, [1.0, -1.0])  # (x-mu)/sigma^2

    def test_higher_density_at_mean(self):
        d = DiagonalGaussian(Tensor(np.array([5.0])), Tensor(np.zeros(1)))
        assert float(d.log_prob(np.array([5.0])).data) > float(d.log_prob(np.array([7.0])).data)


class TestCategorical:
    def test_probs_normalized(self):
        c = Categorical(Tensor(np.random.default_rng(0).standard_normal((4, 5))))
        np.testing.assert_allclose(c.probs().sum(axis=-1), 1.0)

    def test_sample_distribution(self):
        rng = np.random.default_rng(0)
        logits = np.log(np.array([0.7, 0.2, 0.1]))
        c = Categorical(Tensor(logits))
        counts = np.bincount(
            [int(c.sample(rng)) for _ in range(3000)], minlength=3
        ) / 3000
        np.testing.assert_allclose(counts, [0.7, 0.2, 0.1], atol=0.05)

    def test_mode(self):
        c = Categorical(Tensor(np.array([0.1, 5.0, 0.1])))
        assert int(c.mode()) == 1

    def test_log_prob_single(self):
        c = Categorical(Tensor(np.log([0.25, 0.75])))
        assert float(c.log_prob(1).data) == pytest.approx(np.log(0.75))

    def test_log_prob_batch(self):
        logits = Tensor(np.tile(np.log([0.5, 0.5]), (3, 1)))
        lp = Categorical(logits).log_prob(np.array([0, 1, 0]))
        np.testing.assert_allclose(lp.data, np.log(0.5))

    def test_entropy_uniform_is_log_n(self):
        c = Categorical(Tensor(np.zeros(8)))
        assert float(c.entropy().data) == pytest.approx(np.log(8))

    def test_entropy_deterministic_is_zero(self):
        c = Categorical(Tensor(np.array([100.0, 0.0])))
        assert float(c.entropy().data) == pytest.approx(0.0, abs=1e-6)

    def test_gradient_flows_through_log_prob(self):
        logits = Tensor(np.zeros(3), requires_grad=True)
        Categorical(logits).log_prob(0).backward()
        # d log p_0 / d logits = e_0 - softmax = [1-1/3, -1/3, -1/3]
        np.testing.assert_allclose(logits.grad, [2 / 3, -1 / 3, -1 / 3], atol=1e-9)
