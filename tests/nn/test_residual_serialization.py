"""Residual blocks and parameter (de)serialization."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn import ResidualBlock, Sequential, Linear, load_state, save_state
from repro.utils.errors import ConfigError


class TestResidualBlock:
    def test_identity_at_zero_weights(self):
        block = ResidualBlock(4, rng=0)
        for p in block.parameters():
            p.data[...] = 0.0
        # LayerNorm scale zeroed too -> f(x) = 0 -> output = x exactly.
        x = np.random.default_rng(0).standard_normal((2, 4))
        np.testing.assert_allclose(block(Tensor(x)).data, x)

    def test_output_shape(self):
        block = ResidualBlock(8, rng=0)
        assert block(Tensor(np.zeros((3, 8)))).shape == (3, 8)

    def test_relu_variant_has_layernorm(self):
        block = ResidualBlock(4, activation="relu", layer_norm=True, rng=0)
        assert block.norm1 is not None
        # 2 linears (w+b) + 2 norms (scale+shift) = 8 params
        assert len(block.parameters()) == 8

    def test_tanh_variant_without_layernorm(self):
        block = ResidualBlock(4, activation="tanh", layer_norm=False, rng=0)
        assert block.norm1 is None
        assert len(block.parameters()) == 4

    def test_invalid_activation(self):
        with pytest.raises(ConfigError):
            ResidualBlock(4, activation="gelu")

    def test_gradient_flows_through_skip(self):
        block = ResidualBlock(4, rng=0)
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        # The skip path alone guarantees gradient at least 1 per element.
        assert np.all(np.abs(x.grad) > 0)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        net = Sequential(Linear(3, 4, rng=0), ResidualBlock(4, rng=1))
        path = tmp_path / "model.npz"
        save_state(net, path)

        other = Sequential(Linear(3, 4, rng=7), ResidualBlock(4, rng=8))
        load_state(other, path)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3)))
        np.testing.assert_allclose(other(x).data, net(x).data)

    def test_creates_parent_dirs(self, tmp_path):
        net = Linear(2, 2, rng=0)
        path = tmp_path / "deep" / "nested" / "m.npz"
        save_state(net, path)
        assert path.exists()

    def test_strict_mismatch_raises(self, tmp_path):
        save_state(Linear(2, 2, rng=0), tmp_path / "m.npz")
        with pytest.raises(KeyError):
            load_state(Sequential(Linear(2, 2, rng=0), Linear(2, 2, rng=1)), tmp_path / "m.npz")
