"""Table rendering and dataclass config helpers."""

import dataclasses
import json

import pytest

from repro.utils.config import (
    dump_json,
    load_json,
    replace_config,
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    to_jsonable,
)
from repro.utils.errors import ConfigError
from repro.utils.tables import render_kv, render_series_ascii, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["name", "speed"], [["globus", 3652.2], ["automdt", 23988.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "globus" in lines[2]
        assert "23,988.0" in lines[3]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderKv:
    def test_alignment(self):
        out = render_kv({"short": 1, "a-longer-key": 2.5})
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert render_kv({}, title="t") == "t"


class TestRenderSeriesAscii:
    def test_contains_stars_and_range(self):
        out = render_series_ascii([0, 1, 2, 3], [0, 1, 2, 3], width=20, height=5, label="ramp")
        assert "*" in out
        assert "ramp" in out

    def test_empty(self):
        assert "(empty)" in render_series_ascii([], [], label="x")


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ConfigError):
            require_positive(0, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ConfigError):
            require_non_negative(-1, "x")

    def test_require_in_range(self):
        require_in_range(0.5, 0, 1, "x")
        with pytest.raises(ConfigError):
            require_in_range(2, 0, 1, "x")


@dataclasses.dataclass(frozen=True)
class _Cfg:
    a: int = 1
    b: str = "x"


class TestConfigHelpers:
    def test_replace_config(self):
        cfg = replace_config(_Cfg(), a=5)
        assert cfg.a == 5 and cfg.b == "x"

    def test_replace_config_unknown_field(self):
        with pytest.raises(ConfigError, match="unknown field"):
            replace_config(_Cfg(), c=1)

    def test_to_jsonable_nested(self):
        import numpy as np

        blob = to_jsonable({"cfg": _Cfg(), "arr": np.arange(3), "f": np.float64(1.5)})
        assert blob == {"cfg": {"a": 1, "b": "x"}, "arr": [0, 1, 2], "f": 1.5}
        json.dumps(blob)  # must be serializable

    def test_dump_load_roundtrip(self, tmp_path):
        path = tmp_path / "cfg.json"
        dump_json(_Cfg(a=9), path)
        assert load_json(path) == {"a": 9, "b": "x"}
