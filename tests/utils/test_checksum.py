"""Known-answer vectors, kernel equivalence, and streaming algebra.

The pure-python digests are the *reference oracle*; the vectorized numpy
kernels, the buffer-parallel batch kernels, and the streaming wrappers
must all be bit-identical to them on every input shape.  The property
tests here sweep the shapes that matter: every small length (all
head/tail lane combinations), a log-spread of large lengths, random
streaming split points, and batch arenas with empty/ragged records.
"""

import random

from repro.utils.checksum import (
    CRC32C_VECTOR_MIN,
    XXH32_VECTOR_MIN,
    Crc32cStream,
    Xxh32Stream,
    crc32c,
    crc32c_many,
    crc32c_np,
    crc32c_py,
    digest_many,
    kernel_info,
    stream_for,
    xxh32,
    xxh32_many,
    xxh32_np,
    xxh32_py,
)


def _seeded_buffers(count: int, max_len: int, seed: int) -> list[bytes]:
    """Deterministic random buffers covering all tail-lane cases.

    Lengths 0..~560 exhaustively (every (n % 8, n % 16, n % 4) tail
    combination for both kernels), then log-uniform up to ``max_len`` so
    the big-buffer paths (pairwise CRC fold depth, long lane runs) are
    hit without quadratic test time.
    """
    rng = random.Random(seed)
    lengths = list(range(min(561, count)))
    while len(lengths) < count:
        lengths.append(int(2 ** rng.uniform(0, max_len.bit_length() - 1)) + rng.randrange(16))
    return [rng.randbytes(n) for n in lengths[:count]]


class TestCrc32c:
    def test_standard_check_value(self):
        # The CRC32C check value from the iSCSI spec / every reference impl.
        assert crc32c(b"123456789") == 0xE3069283

    def test_pinned_vectors(self):
        assert crc32c(b"") == 0x00000000
        assert crc32c(b"a") == 0xC1D04330
        assert crc32c(b"abc") == 0x364B3FB7
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_streaming_chains_to_one_shot(self):
        data = bytes(range(256)) * 3
        split = 100
        chained = crc32c(data[split:], crc32c(data[:split]))
        assert chained == crc32c(data)

    def test_sensitivity_to_single_bit(self):
        data = b"automdt chunk payload"
        flipped = bytes([data[0] ^ 0x01]) + data[1:]
        assert crc32c(data) != crc32c(flipped)


class TestXxh32:
    def test_pinned_vectors(self):
        # Reference xxHash32 vectors (seed 0).
        assert xxh32(b"") == 0x02CC5D05
        assert xxh32(b"a") == 0x550D7456
        assert xxh32(b"abc") == 0x32D153FF
        assert xxh32(b"123456789") == 0x937BAD67

    def test_seed_changes_digest(self):
        assert xxh32(b"abc", seed=1) != xxh32(b"abc")
        # Reference vector: empty input, seed 1.
        assert xxh32(b"", seed=1) == 0x0B2CB792

    def test_all_length_paths(self):
        # <16 bytes (no lanes), multiples of 16, and ragged tails all
        # exercise distinct branches of the reference algorithm.
        data = bytes(range(64))
        digests = {xxh32(data[:n]) for n in range(40)}
        assert len(digests) == 40  # no accidental collisions on prefixes

    def test_unsigned_32_bit(self):
        for data in (b"", b"x", bytes(1000)):
            for fn in (crc32c, xxh32):
                assert 0 <= fn(data) <= 0xFFFFFFFF


class TestVectorizedEqualsPure:
    """The vectorized kernels are bit-identical to the pure-python oracle."""

    def test_crc32c_pinned_vectors(self):
        for data in (b"", b"a", b"abc", b"123456789", b"\x00" * 32):
            assert crc32c_np(data) == crc32c_py(data)
        assert crc32c_np(b"123456789") == 0xE3069283

    def test_xxh32_pinned_vectors(self):
        for data in (b"", b"a", b"abc", b"123456789"):
            assert xxh32_np(data) == xxh32_py(data)
        assert xxh32_np(b"123456789") == 0x937BAD67

    def test_crc32c_seeded_sweep(self):
        # 1k buffers, lengths 0..~70k: every (n % 8) head/tail case plus
        # all pairwise-fold depths of the blockwise kernel.
        for data in _seeded_buffers(1000, 70_000, seed=1):
            assert crc32c_np(data) == crc32c_py(data), len(data)

    def test_xxh32_seeded_sweep(self):
        for data in _seeded_buffers(1000, 70_000, seed=2):
            assert xxh32_np(data) == xxh32_py(data), len(data)

    def test_nonzero_init_and_seed(self):
        rng = random.Random(3)
        for n in (0, 1, 7, 8, 9, 255, 4096, 70_001):
            data = rng.randbytes(n)
            assert crc32c_np(data, value=0xDEADBEEF) == crc32c_py(data, value=0xDEADBEEF)
            assert xxh32_np(data, seed=42) == xxh32_py(data, seed=42)

    def test_memoryview_input(self):
        data = random.Random(4).randbytes(10_000)
        view = memoryview(data)[17:8971]
        assert crc32c_np(view) == crc32c_py(bytes(view))
        assert xxh32_np(view) == xxh32_py(bytes(view))

    def test_dispatch_is_equivalent_across_threshold(self):
        # The public crc32c/xxh32 select a kernel by input size; both
        # sides of each threshold must agree with the oracle.
        for n in (
            CRC32C_VECTOR_MIN - 1,
            CRC32C_VECTOR_MIN,
            CRC32C_VECTOR_MIN + 1,
            XXH32_VECTOR_MIN - 1,
            XXH32_VECTOR_MIN,
            XXH32_VECTOR_MIN + 1,
        ):
            data = random.Random(n).randbytes(n)
            assert crc32c(data) == crc32c_py(data)
            assert xxh32(data) == xxh32_py(data)

    def test_kernel_info_reports_vectorized(self):
        info = kernel_info()
        assert info["numpy"] is True
        assert info["crc32c"] == "numpy-slice8-fold"
        assert info["xxh32"] == "numpy-lane-parallel"


class TestStreaming:
    """Streaming digests over arbitrary split points == whole-buffer digest."""

    def test_crc_stream_random_splits(self):
        rng = random.Random(10)
        for trial in range(50):
            data = rng.randbytes(rng.randrange(0, 20_000))
            stream = Crc32cStream()
            i = 0
            while i < len(data):
                j = min(len(data), i + rng.randrange(1, 4097))
                stream.update(data[i:j])
                i = j
            assert stream.digest() == crc32c_py(data), (trial, len(data))

    def test_xxh_stream_random_splits(self):
        rng = random.Random(11)
        for trial in range(50):
            data = rng.randbytes(rng.randrange(0, 20_000))
            stream = Xxh32Stream()
            i = 0
            while i < len(data):
                j = min(len(data), i + rng.randrange(1, 4097))
                stream.update(data[i:j])
                i = j
            assert stream.digest() == xxh32_py(data), (trial, len(data))

    def test_xxh_digest_is_non_destructive(self):
        # digest() finalizes a copy: more updates may follow.
        stream = Xxh32Stream()
        stream.update(b"hello ")
        assert stream.digest() == xxh32(b"hello ")
        stream.update(b"world")
        assert stream.digest() == xxh32(b"hello world")

    def test_stream_for_dispatch(self):
        s = stream_for("crc32c", init=crc32c(b"ab"))
        s.update(b"c")
        assert s.digest() == crc32c(b"abc")
        s = stream_for("xxh32", seed=1)
        s.update(b"abc")
        assert s.digest() == xxh32(b"abc", seed=1)


class TestBatchKernels:
    """Buffer-parallel kernels digest a whole arena in one pass."""

    @staticmethod
    def _arena(buffers):
        offsets, lengths, pos = [], [], 0
        for b in buffers:
            offsets.append(pos)
            lengths.append(len(b))
            pos += len(b)
        return b"".join(buffers), offsets, lengths

    def test_crc32c_many_matches_per_buffer(self):
        buffers = _seeded_buffers(200, 4000, seed=20)
        arena, offsets, lengths = self._arena(buffers)
        out = list(crc32c_many(arena, offsets, lengths))
        assert out == [crc32c_py(b) for b in buffers]

    def test_xxh32_many_matches_per_buffer(self):
        buffers = _seeded_buffers(200, 4000, seed=21)
        arena, offsets, lengths = self._arena(buffers)
        out = list(xxh32_many(arena, offsets, lengths))
        assert out == [xxh32_py(b) for b in buffers]

    def test_empty_and_ragged_records(self):
        buffers = [b"", b"x", b"", random.Random(22).randbytes(33), b""]
        arena, offsets, lengths = self._arena(buffers)
        assert list(crc32c_many(arena, offsets, lengths)) == [crc32c_py(b) for b in buffers]
        assert list(xxh32_many(arena, offsets, lengths)) == [xxh32_py(b) for b in buffers]

    def test_large_record_fallback(self):
        # Records beyond the byte-sweep cutoff fall back to the per-buffer
        # kernel — still bit-identical.
        buffers = [random.Random(23).randbytes(5000), b"tiny", b""]
        arena, offsets, lengths = self._arena(buffers)
        assert list(crc32c_many(arena, offsets, lengths)) == [crc32c_py(b) for b in buffers]
        assert list(xxh32_many(arena, offsets, lengths)) == [xxh32_py(b) for b in buffers]

    def test_digest_many(self):
        buffers = [b"abc", b"", b"123456789"]
        assert digest_many(buffers, "crc32c") == [crc32c(b) for b in buffers]
        assert digest_many(buffers, "xxh32") == [xxh32(b) for b in buffers]
