"""Known-answer vectors and algebra for the pure-python digests."""

from repro.utils.checksum import crc32c, xxh32


class TestCrc32c:
    def test_standard_check_value(self):
        # The CRC32C check value from the iSCSI spec / every reference impl.
        assert crc32c(b"123456789") == 0xE3069283

    def test_pinned_vectors(self):
        assert crc32c(b"") == 0x00000000
        assert crc32c(b"a") == 0xC1D04330
        assert crc32c(b"abc") == 0x364B3FB7
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_streaming_chains_to_one_shot(self):
        data = bytes(range(256)) * 3
        split = 100
        chained = crc32c(data[split:], crc32c(data[:split]))
        assert chained == crc32c(data)

    def test_sensitivity_to_single_bit(self):
        data = b"automdt chunk payload"
        flipped = bytes([data[0] ^ 0x01]) + data[1:]
        assert crc32c(data) != crc32c(flipped)


class TestXxh32:
    def test_pinned_vectors(self):
        # Reference xxHash32 vectors (seed 0).
        assert xxh32(b"") == 0x02CC5D05
        assert xxh32(b"a") == 0x550D7456
        assert xxh32(b"abc") == 0x32D153FF
        assert xxh32(b"123456789") == 0x937BAD67

    def test_seed_changes_digest(self):
        assert xxh32(b"abc", seed=1) != xxh32(b"abc")
        # Reference vector: empty input, seed 1.
        assert xxh32(b"", seed=1) == 0x0B2CB792

    def test_all_length_paths(self):
        # <16 bytes (no lanes), multiples of 16, and ragged tails all
        # exercise distinct branches of the reference algorithm.
        data = bytes(range(64))
        digests = {xxh32(data[:n]) for n in range(40)}
        assert len(digests) == 40  # no accidental collisions on prefixes

    def test_unsigned_32_bit(self):
        for data in (b"", b"x", bytes(1000)):
            for fn in (crc32c, xxh32):
                assert 0 <= fn(data) <= 0xFFFFFFFF
