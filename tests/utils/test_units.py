"""Unit conversions: sizes, rates, parsing, formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.errors import ConfigError
from repro.utils.units import (
    GiB,
    KiB,
    MiB,
    TiB,
    bits_to_bytes,
    bytes_per_sec_to_mbps,
    bytes_to_bits,
    format_rate,
    format_size,
    mbps_to_bytes_per_sec,
    parse_rate,
    parse_size,
)


class TestConstants:
    def test_binary_prefixes(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3
        assert TiB == 1024**4


class TestBitByteConversion:
    def test_bytes_to_bits(self):
        assert bytes_to_bits(1) == 8.0

    def test_bits_to_bytes(self):
        assert bits_to_bytes(8) == 1.0

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_roundtrip(self, n):
        assert math.isclose(bits_to_bytes(bytes_to_bits(n)), n, rel_tol=1e-12, abs_tol=1e-9)


class TestRateConversion:
    def test_mbps_to_bytes_per_sec(self):
        # 8 Mbps = 1 MB/s
        assert mbps_to_bytes_per_sec(8.0) == 1e6

    @given(st.floats(min_value=1e-3, max_value=1e9, allow_nan=False))
    def test_roundtrip(self, rate):
        assert math.isclose(bytes_per_sec_to_mbps(mbps_to_bytes_per_sec(rate)), rate, rel_tol=1e-12)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 GB", 1e9),
            ("700GB", 7e11),
            ("1GiB", GiB),
            ("100 KB", 1e5),
            ("2 gib", 2 * GiB),
            ("5 MB", 5e6),
            (123, 123.0),
            (1.5, 1.5),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "GB", "1 parsec", "one GB"])
    def test_invalid(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)


class TestParseRate:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 Gbps", 1000.0),
            ("80Mbps", 80.0),
            ("400 Gbps", 400_000.0),
            ("1 Tbps", 1_000_000.0),
            (250, 250.0),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_rate(text) == expected

    def test_invalid_unit(self):
        with pytest.raises(ConfigError):
            parse_rate("3 furlongs")


class TestFormatting:
    def test_format_size_picks_prefix(self):
        assert format_size(512) == "512.00 B"
        assert format_size(1536) == "1.50 KiB"
        assert format_size(1.5 * GiB) == "1.50 GiB"

    def test_format_rate_picks_prefix(self):
        assert format_rate(80.0) == "80.00 Mbps"
        assert format_rate(23_988.0) == "23.99 Gbps"
        assert format_rate(2.5e6) == "2.50 Tbps"

    @given(st.floats(min_value=0.01, max_value=1e14, allow_nan=False))
    def test_format_size_never_raises(self, n):
        assert isinstance(format_size(n), str)
