"""TimeSeries container: recording, statistics, convergence queries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.timeseries import TimeSeries


def make(values, dt=1.0):
    return TimeSeries("t", [(i * dt, v) for i, v in enumerate(values)])


class TestAppend:
    def test_append_and_len(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2
        assert ts.last == 2.0

    def test_rejects_time_regression(self):
        ts = make([1.0, 2.0])
        with pytest.raises(ValueError):
            ts.append(0.5, 3.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_iteration_and_indexing(self):
        ts = make([5.0, 6.0])
        assert list(ts) == [(0.0, 5.0), (1.0, 6.0)]
        assert ts[1] == (1.0, 6.0)


class TestStatistics:
    def test_mean_windowed(self):
        ts = make([0.0, 10.0, 20.0, 30.0])
        assert ts.mean() == 15.0
        assert ts.mean(t_start=2.0) == 25.0
        assert ts.mean(t_start=1.0, t_end=2.0) == 15.0

    def test_mean_empty_window_is_nan(self):
        assert np.isnan(make([1.0]).mean(t_start=5.0))

    def test_max_min(self):
        ts = make([3.0, -1.0, 7.0])
        assert ts.max() == 7.0
        assert ts.min() == -1.0

    def test_std(self):
        ts = make([1.0, 1.0, 1.0])
        assert ts.std() == 0.0


class TestTimeToReach:
    def test_first_touch(self):
        ts = make([0, 5, 10, 20, 25])
        assert ts.time_to_reach(20) == 3.0

    def test_sustain_requires_consecutive(self):
        ts = make([20, 0, 20, 20, 20])
        assert ts.time_to_reach(20, sustain=3) == 2.0

    def test_never_reached(self):
        assert make([1, 2, 3]).time_to_reach(10) is None

    def test_sustain_longer_than_series(self):
        assert make([5]).time_to_reach(5, sustain=2) is None


class TestSettlingTime:
    def test_settles(self):
        # 9 is already within 10±1, so settling starts at t=2.
        ts = make([0, 5, 9, 10, 10, 10])
        assert ts.settling_time(10, tolerance=1) == 2.0

    def test_never_settles(self):
        ts = make([0, 10, 0, 10, 0])
        assert ts.settling_time(10, tolerance=1) is None

    def test_settled_from_start(self):
        assert make([10, 10]).settling_time(10, tolerance=0.5) == 0.0


class TestResample:
    def test_zero_order_hold(self):
        ts = TimeSeries("x", [(0.0, 1.0), (2.0, 3.0)])
        rs = ts.resample(1.0)
        assert list(rs.values) == [1.0, 1.0, 3.0]

    def test_empty(self):
        assert len(TimeSeries("x").resample(1.0)) == 0


class TestSerialization:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=20))
    def test_roundtrip(self, values):
        ts = make(values)
        back = TimeSeries.from_dict(ts.to_dict())
        assert back.name == ts.name
        np.testing.assert_array_equal(back.values, ts.values)
        np.testing.assert_array_equal(back.times, ts.times)
