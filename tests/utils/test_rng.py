"""Deterministic RNG management."""

import numpy as np

from repro.utils.rng import RngFactory, as_generator


class TestAsGenerator:
    def test_from_seed(self):
        a, b = as_generator(42), as_generator(42)
        assert a.random() == b.random()

    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(7)
        assert factory.stream("policy").random() == factory.stream("policy").random()

    def test_different_names_differ(self):
        factory = RngFactory(7)
        assert factory.stream("policy").random() != factory.stream("value").random()

    def test_different_seeds_differ(self):
        assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()

    def test_stream_independent_of_creation_order(self):
        f1, f2 = RngFactory(9), RngFactory(9)
        f1.stream("a")  # consume one name on f1 only
        assert f1.stream("b").random() == f2.stream("b").random()

    def test_spawn_count_and_independence(self):
        gens = RngFactory(3).spawn(4)
        assert len(gens) == 4
        draws = {g.random() for g in gens}
        assert len(draws) == 4
