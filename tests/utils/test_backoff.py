"""Backoff arithmetic: growth, capping, and jitter staying in its bounds."""

import math

import numpy as np
import pytest

from repro.utils.backoff import RetryBudget, backoff_delay
from repro.utils.errors import RetryBudgetExhausted


class TestUndithered:
    def test_exponential_growth_and_cap(self):
        delays = [backoff_delay(a, base=2.0, factor=2.0, max_delay=60.0) for a in range(1, 8)]
        assert delays[:5] == [2.0, 4.0, 8.0, 16.0, 32.0]
        assert delays[5] == 60.0  # 64 capped
        assert delays[6] == 60.0

    def test_attempt_floor(self):
        # Attempts below 1 behave like the first attempt (no negative powers).
        assert backoff_delay(0) == backoff_delay(1) == 2.0

    def test_no_rng_means_no_jitter(self):
        assert backoff_delay(3, jitter=0.5) == 8.0  # jitter ignored without rng


class TestJitterBounds:
    def test_jitter_within_documented_bounds_1k_draws(self):
        # Documented: delay scaled by a uniform factor in [1-jitter, 1+jitter].
        jitter = 0.25
        rng = np.random.default_rng(7)
        base_delay = backoff_delay(4)  # 16.0 undithered
        lo, hi = base_delay * (1 - jitter), base_delay * (1 + jitter)
        draws = [
            backoff_delay(4, jitter=jitter, rng=rng) for _ in range(1000)
        ]
        assert all(lo <= d <= hi for d in draws)
        # The draws actually spread across the band (not stuck at a point)
        # and stay centred on the undithered delay.
        assert max(draws) - min(draws) > 0.9 * (hi - lo)
        assert abs(np.mean(draws) - base_delay) < 0.02 * base_delay

    def test_jitter_respects_cap_scaling(self):
        # Jitter scales the *capped* delay, so the band sits around max_delay.
        rng = np.random.default_rng(3)
        draws = [
            backoff_delay(10, max_delay=60.0, jitter=0.1, rng=rng) for _ in range(1000)
        ]
        assert all(54.0 <= d <= 66.0 for d in draws)

    def test_seeded_draws_reproducible(self):
        rng_a, rng_b = np.random.default_rng(11), np.random.default_rng(11)
        a = [backoff_delay(2, jitter=0.5, rng=rng_a) for _ in range(5)]
        b = [backoff_delay(2, jitter=0.5, rng=rng_b) for _ in range(5)]
        assert a == b
        assert len(set(a)) > 1  # the shared generator advances per draw


class TestRetryBudget:
    def test_default_is_unbounded(self):
        budget = RetryBudget()
        assert budget.max_elapsed == math.inf
        budget.start(0.0)
        assert budget.allows(1e12)
        assert budget.remaining(1e12) == math.inf

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            RetryBudget(bad)

    def test_window_opens_at_first_start(self):
        budget = RetryBudget(10.0)
        # Before the window opens nothing has been consumed.
        assert budget.elapsed(100.0) == 0.0
        assert budget.allows(100.0)
        budget.start(100.0)
        assert budget.elapsed(105.0) == 5.0
        assert budget.remaining(105.0) == 5.0

    def test_start_is_idempotent_first_call_wins(self):
        budget = RetryBudget(10.0)
        budget.start(5.0)
        budget.start(50.0)  # ignored
        assert budget.started_at == 5.0
        assert not budget.allows(16.0)

    def test_allows_is_inclusive_at_the_boundary(self):
        budget = RetryBudget(10.0)
        budget.start(0.0)
        assert budget.allows(10.0)
        assert not budget.allows(10.0 + 1e-9)

    def test_remaining_goes_negative_once_exhausted(self):
        budget = RetryBudget(10.0)
        budget.start(0.0)
        assert budget.remaining(25.0) == -15.0

    def test_require_raises_typed_with_context(self):
        budget = RetryBudget(10.0)
        budget.start(3.0)
        budget.require(13.0)  # boundary still fine
        with pytest.raises(RetryBudgetExhausted, match="resume.*10.0s.*t=3.0"):
            budget.require(20.0, what="resume")
