"""Backoff arithmetic: growth, capping, and jitter staying in its bounds."""

import numpy as np

from repro.utils.backoff import backoff_delay


class TestUndithered:
    def test_exponential_growth_and_cap(self):
        delays = [backoff_delay(a, base=2.0, factor=2.0, max_delay=60.0) for a in range(1, 8)]
        assert delays[:5] == [2.0, 4.0, 8.0, 16.0, 32.0]
        assert delays[5] == 60.0  # 64 capped
        assert delays[6] == 60.0

    def test_attempt_floor(self):
        # Attempts below 1 behave like the first attempt (no negative powers).
        assert backoff_delay(0) == backoff_delay(1) == 2.0

    def test_no_rng_means_no_jitter(self):
        assert backoff_delay(3, jitter=0.5) == 8.0  # jitter ignored without rng


class TestJitterBounds:
    def test_jitter_within_documented_bounds_1k_draws(self):
        # Documented: delay scaled by a uniform factor in [1-jitter, 1+jitter].
        jitter = 0.25
        rng = np.random.default_rng(7)
        base_delay = backoff_delay(4)  # 16.0 undithered
        lo, hi = base_delay * (1 - jitter), base_delay * (1 + jitter)
        draws = [
            backoff_delay(4, jitter=jitter, rng=rng) for _ in range(1000)
        ]
        assert all(lo <= d <= hi for d in draws)
        # The draws actually spread across the band (not stuck at a point)
        # and stay centred on the undithered delay.
        assert max(draws) - min(draws) > 0.9 * (hi - lo)
        assert abs(np.mean(draws) - base_delay) < 0.02 * base_delay

    def test_jitter_respects_cap_scaling(self):
        # Jitter scales the *capped* delay, so the band sits around max_delay.
        rng = np.random.default_rng(3)
        draws = [
            backoff_delay(10, max_delay=60.0, jitter=0.1, rng=rng) for _ in range(1000)
        ]
        assert all(54.0 <= d <= 66.0 for d in draws)

    def test_seeded_draws_reproducible(self):
        rng_a, rng_b = np.random.default_rng(11), np.random.default_rng(11)
        a = [backoff_delay(2, jitter=0.5, rng=rng_a) for _ in range(5)]
        b = [backoff_delay(2, jitter=0.5, rng=rng_b) for _ in range(5)]
        assert a == b
        assert len(set(a)) > 1  # the shared generator advances per draw
