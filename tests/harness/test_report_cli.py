"""``automdt report``: every rendered number comes from store queries."""

import json

from repro.harness.cli import main
from repro.obs.store import ResultsStore, RunRecord
from repro.obs.store.report import build_report, split_policy_metric


def _seed_store(db):
    """Two seeds of a policy-matrix scenario plus an off-grid metric."""
    store = ResultsStore(db)
    for seed, (auto, marlin) in enumerate([(900.0, 700.0), (920.0, 720.0)]):
        store.ingest(
            RunRecord(
                kind="experiment",
                scenario="baselines_read",
                seed=seed,
                config={"experiment": "baselines_read", "v": 1},
                started=100.0 + seed,
                finished=101.0 + seed,
                metrics={
                    "automdt_throughput_mbps": auto,
                    "marlin_throughput_mbps": marlin,
                    "automdt_completion_s": 30.0 + seed,
                    "monolithic_mean_threads": 38.0,
                    "multivariate_gd_reach_90pct_s": 15.0,
                    "unclassified_metric": 7.0,
                },
            )
        )
    return store


def test_split_policy_metric_conventions():
    assert split_policy_metric("automdt_throughput_mbps") == ("AutoMDT", "goodput (Mbps)")
    assert split_policy_metric("marlin_completion_s") == ("Marlin", "completion (s)")
    assert split_policy_metric("multivariate_gd_reach_90pct_s") == (
        "gradient-descent", "ramp/recovery (s)",
    )
    assert split_policy_metric("monolithic_mean_threads") == ("monolithic", "mean threads")
    assert split_policy_metric("automdt_mean_total_threads") == ("AutoMDT", "mean threads")
    assert split_policy_metric("unrelated_metric") is None


def test_build_report_aggregates_over_seeds(tmp_path):
    store = _seed_store(tmp_path / "store.db")
    report = build_report(store)
    entry = report["scenarios"]["baselines_read"]
    assert entry["seeds"] == [0, 1]
    assert entry["runs"] == 2
    goodput = entry["policies"]["AutoMDT"]["goodput (Mbps)"]
    assert goodput["mean"] == 910.0
    assert goodput["n"] == 2
    assert entry["policies"]["Marlin"]["goodput (Mbps)"]["mean"] == 710.0
    # Off-grid metrics land in the plain metrics section, not the table.
    assert entry["metrics"]["unclassified_metric"]["mean"] == 7.0
    assert "unclassified_metric" not in str(entry["policies"])


def test_report_only_latest_revision_per_scenario(tmp_path):
    store = _seed_store(tmp_path / "store.db")
    store.ingest(
        RunRecord(
            kind="experiment", scenario="baselines_read", seed=0,
            config={"experiment": "baselines_read", "v": 2},
            git_rev="newrev", started=500.0, finished=501.0,
            metrics={"automdt_throughput_mbps": 1000.0},
        )
    )
    entry = build_report(store)["scenarios"]["baselines_read"]
    assert entry["git_rev"] == "newrev"
    assert entry["policies"]["AutoMDT"]["goodput (Mbps)"]["mean"] == 1000.0


def test_report_cli_markdown_and_json(tmp_path, capsys):
    db = tmp_path / "store.db"
    _seed_store(db)

    assert main(["report", "--store", str(db)]) == 0
    out = capsys.readouterr().out
    assert "| AutoMDT |" in out and "| Marlin |" in out
    assert "910" in out and "710" in out  # means over the two seeds

    out_path = tmp_path / "report.json"
    assert main(["report", "--store", str(db), "--format", "json",
                 "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    scenario = payload["scenarios"]["baselines_read"]
    assert scenario["policies"]["AutoMDT"]["goodput (Mbps)"]["mean"] == 910.0


def test_report_cli_missing_store_is_an_error(tmp_path, capsys):
    assert main(["report", "--store", str(tmp_path / "absent.db")]) == 2
    assert "no results store" in capsys.readouterr().err


def test_report_scenario_filter(tmp_path, capsys):
    db = tmp_path / "store.db"
    store = _seed_store(db)
    store.ingest(
        RunRecord(kind="experiment", scenario="other", seed=0,
                  started=1.0, finished=2.0, metrics={"automdt_completion_s": 5.0})
    )
    assert main(["report", "--store", str(db), "--scenario", "other"]) == 0
    out = capsys.readouterr().out
    assert "other" in out and "baselines_read" not in out
