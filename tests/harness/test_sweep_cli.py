"""``automdt sweep`` and the parallel flags of ``automdt run``."""

from repro.harness.cli import main


class TestSweepCommand:
    def test_sweep_serial(self, capsys):
        assert main(["sweep", "figure1", "--seeds", "0-1"]) == 0
        out = capsys.readouterr().out
        assert "figure1 over seeds [0, 1]" in out
        assert "sweep over seeds" in out

    def test_sweep_parallel_workers(self, capsys):
        assert main(["sweep", "figure1", "--seeds", "0,1", "--workers", "2"]) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_sweep_multiple_experiments(self, capsys):
        assert main(["sweep", "figure1,parallelism", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "parallelism" in out

    def test_sweep_saves_results(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["sweep", "figure1", "--seeds", "0-1", "--out", str(out_dir)]) == 0
        assert (out_dir / "figure1_seed0.json").exists()
        assert (out_dir / "figure1_seed1.json").exists()

    def test_sweep_unknown_experiment(self, capsys):
        assert main(["sweep", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_bad_seeds(self, capsys):
        assert main(["sweep", "figure1", "--seeds", "9-0"]) == 2
        assert "bad --seeds" in capsys.readouterr().err

    def test_sweep_obs_merges_worker_logs(self, tmp_path, capsys):
        obs_dir = tmp_path / "obsrun"
        code = main([
            "sweep", "figure1", "--seeds", "0-1", "--workers", "2",
            "--obs", str(obs_dir),
        ])
        assert code == 0
        assert (obs_dir / "events.jsonl").exists()
        assert not list(obs_dir.glob("events-worker*.jsonl"))


class TestRunSeedsFlag:
    def test_run_with_seed_range(self, capsys):
        assert main(["run", "figure1", "--seeds", "0-1"]) == 0
        assert "figure1 over seeds [0, 1]" in capsys.readouterr().out

    def test_run_with_seed_range_parallel(self, capsys):
        assert main(["run", "figure1", "--seeds", "0,1", "--workers", "2"]) == 0
        assert "figure1 over seeds [0, 1]" in capsys.readouterr().out
