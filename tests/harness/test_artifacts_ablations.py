"""Artifact cache and ablation helpers."""

import numpy as np
import pytest

from repro.core.ppo import PPOConfig
from repro.core.training import TrainingConfig
from repro.emulator.presets import fig5_read_bottleneck
from repro.harness.ablations import MaskedStateEnv, optimal_threads_for_k
from repro.harness.artifacts import trained_automdt
from repro.simulator import SimulatorConfig


TINY_PPO = PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1)
TINY_TRAINING = TrainingConfig(max_episodes=8, stagnation_episodes=8)


class TestTrainedAutomdtCache:
    def test_trains_then_caches(self, tmp_path):
        config = fig5_read_bottleneck()
        trained = []
        first = trained_automdt(
            config,
            ppo_config=TINY_PPO,
            training_config=TINY_TRAINING,
            exploration_seconds=20.0,
            cache_dir=tmp_path,
            on_train=lambda p: trained.append(1),
        )
        assert trained == [1]
        assert first.agent is not None

        second = trained_automdt(
            config,
            ppo_config=TINY_PPO,
            training_config=TINY_TRAINING,
            exploration_seconds=20.0,
            cache_dir=tmp_path,
            on_train=lambda p: trained.append(2),
        )
        assert trained == [1]  # loaded from cache, no second training
        s = np.zeros(8)
        np.testing.assert_allclose(
            first.agent.act(s, deterministic=True)[0],
            second.agent.act(s, deterministic=True)[0],
        )

    def test_different_budget_different_key(self, tmp_path):
        config = fig5_read_bottleneck()
        calls = []
        for episodes in (6, 7):
            trained_automdt(
                config,
                ppo_config=TINY_PPO,
                training_config=TrainingConfig(max_episodes=episodes, stagnation_episodes=8),
                exploration_seconds=20.0,
                cache_dir=tmp_path,
                on_train=lambda p: calls.append(1),
            )
        assert len(calls) == 2

    def test_force_retrain(self, tmp_path):
        config = fig5_read_bottleneck()
        calls = []
        for _ in range(2):
            trained_automdt(
                config,
                ppo_config=TINY_PPO,
                training_config=TINY_TRAINING,
                exploration_seconds=20.0,
                cache_dir=tmp_path,
                force_retrain=True,
                on_train=lambda p: calls.append(1),
            )
        assert len(calls) == 2


class TestOptimalThreadsForK:
    CONFIG = SimulatorConfig(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        max_threads=40,
    )

    def test_small_k_recovers_paper_optimum(self):
        triple, flow, _ = optimal_threads_for_k(self.CONFIG, 1.001)
        assert triple == (13, 7, 5)
        assert flow == pytest.approx(1000.0)

    def test_huge_k_prefers_far_fewer_threads(self):
        cheap_triple, cheap_flow, _ = optimal_threads_for_k(self.CONFIG, 1.001)
        harsh_triple, harsh_flow, _ = optimal_threads_for_k(self.CONFIG, 2.0)
        assert sum(harsh_triple) < sum(cheap_triple)
        assert harsh_flow < cheap_flow

    def test_utility_actually_maximal_on_grid(self):
        """Exhaustive cross-check on a tiny grid."""
        from repro.core.utility import UtilityFunction
        from repro.harness.ablations import _steady_state_throughputs

        config = SimulatorConfig(
            tpt_read=100, tpt_network=100, tpt_write=100,
            bandwidth_read=300, bandwidth_network=300, bandwidth_write=300,
            max_threads=5,
        )
        k = 1.05
        triple, _, best_value = optimal_threads_for_k(config, k)
        u = UtilityFunction(k)
        import itertools

        brute = max(
            u(_steady_state_throughputs(config, t), t)
            for t in itertools.product(range(1, 6), repeat=3)
        )
        assert best_value == pytest.approx(brute)


class TestMaskedStateEnv:
    def test_buffer_components_zeroed(self):
        from repro.core.env import SimulatorEnv

        env = MaskedStateEnv(SimulatorEnv(TestOptimalThreadsForK.CONFIG, rng=0))
        state = env.reset()
        assert state[6] == 0.0 and state[7] == 0.0
        state, _, _, _ = env.step([0.5, 0.5, 0.5])
        assert state[6] == 0.0 and state[7] == 0.0

    def test_other_components_intact(self):
        from repro.core.env import SimulatorEnv

        env = MaskedStateEnv(SimulatorEnv(TestOptimalThreadsForK.CONFIG, rng=0))
        state = env.reset()
        assert np.any(state[:6] != 0.0)
