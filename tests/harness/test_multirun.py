"""Multi-seed aggregation."""

import numpy as np
import pytest

from repro.harness.multirun import AggregateResult, flatten_summary, run_seeded
from repro.harness.result import ExperimentResult


def fake_experiment(*, seed: int = 0, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    return ExperimentResult(
        name="fake",
        summary={
            "speed": 100.0 + seed,
            "nested": {"a": float(seed), "b": 2.0},
            "triple": (1, 2, seed),
            "flag": seed % 2 == 0,
            "label": "not-a-number",
            "sometimes": 5.0 if seed > 0 else None,
        },
    )


class TestFlattenSummary:
    def test_scalars_and_nesting(self):
        flat = flatten_summary({"a": 1, "b": {"c": 2.5}, "d": (3, 4)})
        assert flat == {"a": 1.0, "b.c": 2.5, "d[0]": 3.0, "d[1]": 4.0}

    def test_skips_non_numeric(self):
        flat = flatten_summary({"s": "text", "n": None, "x": 1})
        assert flat == {"x": 1.0}

    def test_bools_as_floats(self):
        assert flatten_summary({"ok": True}) == {"ok": 1.0}


class TestRunSeeded:
    def test_aggregates_mean_std(self):
        agg = run_seeded(fake_experiment, seeds=[0, 1, 2])
        assert agg.mean("speed") == pytest.approx(101.0)
        assert agg.stats["speed"]["std"] == pytest.approx(np.std([100, 101, 102]))
        assert agg.stats["speed"]["n"] == 3

    def test_nested_keys(self):
        agg = run_seeded(fake_experiment, seeds=[0, 1])
        assert "nested.a" in agg.stats
        assert "triple[2]" in agg.stats

    def test_partial_metrics_counted(self):
        agg = run_seeded(fake_experiment, seeds=[0, 1, 2])
        # 'sometimes' is None for seed 0 → n == 2.
        assert agg.stats["sometimes"]["n"] == 2

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_seeded(fake_experiment, seeds=[])

    def test_table_renders(self):
        agg = run_seeded(fake_experiment, seeds=[0, 1])
        text = agg.table()
        assert "speed" in text and "mean" in text

    def test_runs_preserved(self):
        agg = run_seeded(fake_experiment, seeds=[3, 4])
        assert isinstance(agg, AggregateResult)
        assert len(agg.runs) == 2
        assert agg.seeds == (3, 4)

    def test_on_real_light_experiment(self):
        from repro.harness import experiment_k_sweep

        agg = run_seeded(experiment_k_sweep, seeds=[0, 1])
        assert agg.mean("best_k") == pytest.approx(1.02)
