"""Harness plumbing: ExperimentResult, CLI, registry."""

import json

from repro.harness.cli import build_parser, main
from repro.harness.experiments import EXPERIMENTS
from repro.harness.result import ExperimentResult
from repro.utils.timeseries import TimeSeries


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            name="demo",
            summary={"speed": 123.4, "winner": "AutoMDT"},
            tables=["| a |"],
            series={"tput": TimeSeries("tput", [(0.0, 1.0), (1.0, 2.0)])},
            notes=["shape holds"],
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "=== demo ===" in text
        assert "speed" in text and "123.4" in text
        assert "| a |" in text
        assert "note: shape holds" in text

    def test_save_roundtrip(self, tmp_path):
        path = self.make().save(tmp_path)
        blob = json.loads(path.read_text())
        assert blob["summary"]["winner"] == "AutoMDT"
        assert blob["series"]["tput"]["values"] == [1.0, 2.0]

    def test_empty_result_renders(self):
        assert ExperimentResult("x").render() == "=== x ==="


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "figure1", "figure3", "figure4",
            "figure5_read", "figure5_network", "figure5_write",
            "table1", "training", "finetune",
            "k_sweep", "state_ablation", "monolithic", "sim2real", "filelevel",
            "online_drl", "parallelism",
            "baselines_read", "baselines_network", "baselines_write",
            "faults_link_flap", "faults_storage_stall", "faults_receiver_restart",
            "faults_probe_dropout", "faults_report_loss", "faults_random",
            "adapt_drift", "integrity_corruption",
        }
        assert expected == set(EXPERIMENTS)

    def test_all_entries_callable(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_parser_flags(self):
        args = build_parser().parse_args(["run", "table1", "--full", "--seed", "3"])
        assert args.experiment == "table1"
        assert args.full is True
        assert args.seed == 3

    def test_run_light_experiment(self, capsys, tmp_path):
        assert main(["run", "k_sweep", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "k_sweep" in out
        assert (tmp_path / "k_sweep.json").exists()
