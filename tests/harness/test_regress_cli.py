"""``automdt regress``: cross-PR bench gating against the stored trajectory."""

import json

import pytest

from repro.harness.cli import main
from repro.obs.store import ResultsStore
from repro.obs.store.regress import BOOL, HIGHER, INFO, LOWER, classify_key, run_regress
from repro.utils.errors import BenchSchemaError


def _baseline(db, suite="kernels", **values):
    store = ResultsStore(db)
    report = {"bench": suite, "schema": 1}
    report.update(values)
    store.ingest_bench(suite, report, git_rev="baseline", started=100.0)
    return store


def _current(tmp_path, suite="kernels", **values):
    report = {"bench": suite, "schema": 1}
    report.update(values)
    path = tmp_path / f"BENCH_{suite}.json"
    path.write_text(json.dumps(report) + "\n")
    return path


def test_classify_key_directions():
    assert classify_key("crc32c.speedup") == HIGHER
    assert classify_key("cache_speedup") == HIGHER
    assert classify_key("overhead") == LOWER
    assert classify_key("verify.overhead_fraction") == LOWER
    assert classify_key("ok") == BOOL
    assert classify_key("determinism.identical") == BOOL
    assert classify_key("fairness.within_bound") == BOOL
    assert classify_key("best_wall_s") == INFO
    assert classify_key("verify_mb_per_s") == INFO


def test_small_drift_within_threshold_passes(tmp_path):
    db = tmp_path / "store.db"
    _baseline(db, speedup=4.0, ok=True)
    path = _current(tmp_path, speedup=3.9, ok=True)
    assert main(["regress", str(path), "--store", str(db)]) == 0


def test_large_regression_fails_with_nonzero_exit(tmp_path, capsys):
    db = tmp_path / "store.db"
    _baseline(db, speedup=4.0, ok=True)
    path = _current(tmp_path, speedup=2.0, ok=True)
    assert main(["regress", str(path), "--store", str(db)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "speedup" in out


def test_lower_better_keys_gate_increases(tmp_path):
    db = tmp_path / "store.db"
    _baseline(db, overhead=0.010)
    worse = _current(tmp_path, overhead=0.020)
    assert main(["regress", str(worse), "--store", str(db), "--no-ingest"]) == 1
    better = _current(tmp_path, overhead=0.005)
    assert main(["regress", str(better), "--store", str(db), "--no-ingest"]) == 0


def test_boolean_gate_must_stay_true(tmp_path):
    db = tmp_path / "store.db"
    _baseline(db, ok=True)
    path = _current(tmp_path, ok=False)
    assert main(["regress", str(path), "--store", str(db)]) == 1


def test_informational_keys_do_not_gate_by_default(tmp_path):
    db = tmp_path / "store.db"
    _baseline(db, best_wall_s=1.0)
    path = _current(tmp_path, best_wall_s=3.0)  # 3x slower wall clock
    assert main(["regress", str(path), "--store", str(db), "--no-ingest"]) == 0
    # ...unless absolute gating is requested explicitly.
    assert main(["regress", str(path), "--store", str(db), "--no-ingest",
                 "--gate-absolute"]) == 1


def test_threshold_is_configurable(tmp_path):
    db = tmp_path / "store.db"
    _baseline(db, speedup=4.0)
    path = _current(tmp_path, speedup=3.9)  # -2.5%
    assert main(["regress", str(path), "--store", str(db), "--no-ingest",
                 "--threshold", "0.01"]) == 1


def test_no_baseline_seeds_the_trajectory(tmp_path, capsys):
    db = tmp_path / "store.db"
    path = _current(tmp_path, speedup=4.0)
    assert main(["regress", str(path), "--store", str(db)]) == 0
    assert "no stored baseline" in capsys.readouterr().out
    # The ingest seeded the trajectory: the next comparison has a baseline.
    path2 = _current(tmp_path, speedup=2.0)
    assert main(["regress", str(path2), "--store", str(db)]) == 1


def test_regress_appends_trajectory_unless_no_ingest(tmp_path):
    db = tmp_path / "store.db"
    store = _baseline(db, speedup=4.0)
    path = _current(tmp_path, speedup=4.2)
    result = run_regress(store, [path], ingest=False)
    assert result["ok"]
    assert len(store.bench_trajectory("kernels", "speedup")) == 1
    result = run_regress(store, [path], ingest=True)
    assert result["ok"]
    trajectory = store.bench_trajectory("kernels", "speedup")
    assert [value for _, _, value in trajectory] == [4.0, 4.2]


def test_skipped_legs_are_informational(tmp_path, capsys):
    """``status: skipped_*`` legs never gate, whatever their key suffixes.

    A single-core runner records the sweep leg as skipped; gated-looking
    keys under that leg (a stale ``speedup``, an ``ok`` bool) must be
    demoted to informational instead of compared against the trajectory.
    """
    db = tmp_path / "store.db"
    _baseline(db, sweep={"speedup": 4.0, "ok": True, "cpu_count": 8})
    path = _current(
        tmp_path,
        sweep={
            "status": "skipped_single_core",
            "speedup": 0.8,
            "ok": False,
            "cpu_count": 1,
        },
    )
    assert main(["regress", str(path), "--store", str(db), "--no-ingest"]) == 0
    assert "sweep skipped" in capsys.readouterr().out
    # The same values without the skip marker regress as usual.
    bad = _current(tmp_path, sweep={"speedup": 0.8, "ok": False, "cpu_count": 1})
    assert main(["regress", str(bad), "--store", str(db), "--no-ingest"]) == 1


def test_skipped_prefixes_walks_nested_legs():
    from repro.obs.store.regress import skipped_prefixes

    report = {
        "bench": "parallel",
        "schema": 1,
        "sweep": {"status": "skipped_single_core"},
        "nested": {"inner": {"status": "skipped_no_gpu", "x": 1.0}},
        "fine": {"status": "ok", "speedup": 2.0},
    }
    assert skipped_prefixes(report) == ("sweep", "nested.inner")


def test_regress_rejects_unknown_schema(tmp_path, capsys):
    db = tmp_path / "store.db"
    report = {"bench": "kernels", "schema": 7, "speedup": 4.0}
    path = tmp_path / "BENCH_kernels.json"
    path.write_text(json.dumps(report))
    assert main(["regress", str(path), "--store", str(db)]) == 2
    assert "BenchSchemaError" in capsys.readouterr().err
    with pytest.raises(BenchSchemaError):
        run_regress(ResultsStore(db), [path])


def test_regress_json_output(tmp_path, capsys):
    db = tmp_path / "store.db"
    _baseline(db, speedup=4.0)
    path = _current(tmp_path, speedup=3.9)
    assert main(["regress", str(path), "--store", str(db), "--json",
                 "--no-ingest"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["suites"]["kernels"]["status"] == "ok"
    findings = payload["suites"]["kernels"]["findings"]
    assert any(f["key"] == "speedup" and not f["regressed"] for f in findings)
