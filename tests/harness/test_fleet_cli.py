"""`automdt fleet` surface: report artifacts, exit codes, soak mode."""

import json

from repro.harness.cli import main


class TestFleetCommand:
    def test_fleet_writes_report_and_exits_zero(self, capsys, tmp_path):
        code = main(
            ["fleet", "--transfers", "4", "--tenants", "2", "--gb", "0.1",
             "--seed", "0", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "ALL INVARIANTS HELD" in out
        report = json.loads((tmp_path / "fleet_report.json").read_text())
        assert report["all_passed"]
        assert report["admission"]["admitted"] == 4
        assert len(report["tenants"]) == 2
        assert report["unrecovered_jobs"] == []

    def test_fleet_exits_nonzero_on_unrecovered_transfer(self, capsys, tmp_path):
        # A horizon far too small to finish the jobs forces typed failures,
        # which the CLI must surface as a non-zero exit.
        code = main(
            ["fleet", "--transfers", "4", "--tenants", "2", "--gb", "0.5",
             "--seed", "0", "--horizon", "10", "--out", str(tmp_path)]
        )
        assert code == 1
        report = json.loads((tmp_path / "fleet_report.json").read_text())
        assert not report["all_passed"]
        assert report["unrecovered_jobs"]

    def test_fleet_report_is_seed_reproducible(self, capsys, tmp_path):
        argv = ["fleet", "--transfers", "4", "--tenants", "2", "--gb", "0.1",
                "--seed", "7"]
        assert main([*argv, "--out", str(tmp_path / "one")]) == 0
        assert main([*argv, "--out", str(tmp_path / "two")]) == 0
        first = json.loads((tmp_path / "one" / "fleet_report.json").read_text())
        second = json.loads((tmp_path / "two" / "fleet_report.json").read_text())
        assert first["fingerprint"] == second["fingerprint"]


class TestFleetSoakCommand:
    def test_soak_mode_writes_soak_report(self, capsys, tmp_path):
        code = main(
            ["fleet", "--soak", "--cases", "1", "--transfers", "8",
             "--tenants", "2", "--gb", "0.1", "--seed", "0", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet soak" in out
        report = json.loads((tmp_path / "fleet_soak_report.json").read_text())
        assert report["all_passed"]
        assert len(report["cases"]) == 1
