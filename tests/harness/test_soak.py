"""Chaos soak: seeded invariants, determinism, parallel == serial."""

from repro.harness.soak import SoakConfig, render_soak_report, run_soak
from repro.transfer import verify_artifacts


def small_config(**kwargs) -> SoakConfig:
    defaults = dict(cases=2, gigabytes=0.5, chunk_size=0.125e9, max_crashes=1)
    defaults.update(kwargs)
    return SoakConfig(**defaults)


def strip_dirs(report: dict) -> list[dict]:
    return [{k: v for k, v in case.items() if k != "dir"} for case in report["cases"]]


class TestInvariants:
    def test_all_invariants_hold_under_chaos(self, tmp_path):
        report = run_soak(small_config(), out_dir=tmp_path)
        assert report["all_passed"], report["failed_cases"]
        for case in report["cases"]:
            assert case["verified"] and case["completed"]
            assert all(case["invariants"].values()), case["invariants"]
        # Chaos actually happened somewhere across the soak: at least one
        # mid-transfer crash landed and damaged chunks were re-sent.
        assert report["total_crashes"] >= 1
        assert report["total_resent_chunks"] > 0

    def test_case_artifacts_are_independently_verifiable(self, tmp_path):
        report = run_soak(small_config(cases=1), out_dir=tmp_path)
        case_dir = report["cases"][0]["dir"]
        offline = verify_artifacts(case_dir)
        assert offline["all_verified"]
        assert offline["replay_idempotent"]
        assert (tmp_path / "soak_report.json").exists()

    def test_quick_preset(self):
        quick = SoakConfig.quick(root_seed=3)
        assert quick.cases == 3 and quick.root_seed == 3 and quick.crashes


class TestDeterminism:
    def test_same_root_seed_identical_cases(self, tmp_path):
        a = run_soak(small_config(), out_dir=tmp_path / "a")
        b = run_soak(small_config(), out_dir=tmp_path / "b")
        assert strip_dirs(a) == strip_dirs(b)

    def test_different_root_seed_different_cases(self, tmp_path):
        a = run_soak(small_config(cases=1), out_dir=tmp_path / "a")
        b = run_soak(small_config(cases=1, root_seed=1), out_dir=tmp_path / "b")
        assert strip_dirs(a) != strip_dirs(b)

    def test_parallel_identical_to_serial(self, tmp_path):
        serial = run_soak(small_config(workers=1), out_dir=tmp_path / "serial")
        parallel = run_soak(small_config(workers=2), out_dir=tmp_path / "parallel")
        assert strip_dirs(serial) == strip_dirs(parallel)


class TestReport:
    def test_render_marks_violations(self, tmp_path):
        report = run_soak(small_config(cases=1), out_dir=tmp_path)
        text = render_soak_report(report)
        assert "PASS" in text and "ALL INVARIANTS HELD" in text
        report["cases"][0]["invariants"]["conservation"] = False
        report["cases"][0]["passed"] = False
        report["all_passed"] = False
        report["failed_cases"] = [0]
        text = render_soak_report(report)
        assert "FAIL" in text and "vdrC" in text  # violated flag uppercased
