"""Light (no-training) harness experiments run end-to-end in the test suite.

The heavy, training-dependent experiments are exercised by the benchmark
suite; the analytic / emulator-only ones are cheap enough to test here.
"""

import pytest

from repro.harness import (
    experiment_figure1,
    experiment_k_sweep,
    experiment_monolithic,
)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return experiment_figure1(fast=True, seed=0)

    def test_coupling_demonstrated(self, result):
        assert result.summary["coupling_demonstrated"]

    def test_series_complete(self, result):
        for name in ("t_read", "t_network", "t_write", "sender_fill", "receiver_fill"):
            assert name in result.series
            assert len(result.series[name]) == 90  # 20 + 40 + 30 seconds

    def test_buffer_actually_fills(self, result):
        assert result.summary["sender_fill_at_60s"] > 0.9

    def test_deterministic(self):
        a = experiment_figure1(fast=True, seed=0)
        b = experiment_figure1(fast=True, seed=0)
        assert a.summary == b.summary


class TestKSweep:
    def test_best_k_is_papers(self):
        result = experiment_k_sweep(fast=True, seed=0)
        assert result.summary["best_k"] == pytest.approx(1.02)

    def test_table_has_both_links(self):
        result = experiment_k_sweep(fast=True, seed=0)
        assert "1 Gbps" in result.tables[0]
        assert "25 Gbps" in result.tables[0]


class TestMonolithic:
    @pytest.fixture(scope="class")
    def result(self):
        return experiment_monolithic(fast=True, seed=0)

    def test_modular_needs_few_io_threads(self, result):
        optimal = result.summary["optimal_threads"]
        assert optimal[1] >= 80  # the throttled network leg
        assert optimal[0] <= 15 and optimal[2] <= 15

    def test_monolithic_burns_threads(self, result):
        assert (
            result.summary["monolithic_mean_total_threads"]
            >= 2 * result.summary["modular_mean_total_threads"]
        )

    def test_modular_not_slower(self, result):
        assert (
            result.summary["modular_completion_s"]
            <= result.summary["monolithic_completion_s"] * 1.1
        )
