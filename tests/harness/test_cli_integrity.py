"""CLI integrity surface: soak / verify subcommands and run exit codes."""

import json

from repro.harness.cli import main
from repro.harness.experiments import EXPERIMENTS, ExperimentResult


class TestSoakCommand:
    def test_soak_writes_report_and_exits_zero(self, capsys, tmp_path):
        code = main(
            ["soak", "--cases", "1", "--gb", "0.5", "--seed", "0", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos soak" in out and "ALL INVARIANTS HELD" in out
        report = json.loads((tmp_path / "soak_report.json").read_text())
        assert report["all_passed"]
        assert len(report["cases"]) == 1

    def test_soak_quick_preset_flag(self, capsys, tmp_path):
        code = main(["soak", "--quick", "--no-crashes", "--out", str(tmp_path)])
        assert code == 0
        report = json.loads((tmp_path / "soak_report.json").read_text())
        assert len(report["cases"]) == 3  # quick preset pins the case count
        assert not report["config"]["crashes"]


class TestVerifyCommand:
    def test_verify_soak_case_dir(self, capsys, tmp_path):
        assert main(["soak", "--cases", "1", "--gb", "0.5", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        code = main(["verify", str(tmp_path / "case000")])
        assert code == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out

    def test_verify_missing_dir_is_usage_error(self, capsys, tmp_path):
        assert main(["verify", str(tmp_path / "nope")]) == 2
        assert "cannot verify" in capsys.readouterr().err

    def test_verify_flags_damaged_destination(self, capsys, tmp_path):
        assert main(["soak", "--cases", "1", "--gb", "0.5", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        destination = tmp_path / "case000" / "destination.json"
        blob = json.loads(destination.read_text())
        first = next(iter(blob["chunks"]))
        blob["chunks"][first]["digest"] = 1  # bit rot after the run
        destination.write_text(json.dumps(blob))
        code = main(["verify", str(tmp_path / "case000")])
        assert code == 1
        assert "VERIFICATION FAILED" in capsys.readouterr().out


class TestRunExitCodes:
    def test_run_fails_when_supervised_transfer_fails(self, capsys, monkeypatch):
        def doomed(*, fast=True, seed=0):
            return ExperimentResult(
                "doomed", summary={"supervised_completed": False}, tables=[]
            )

        monkeypatch.setitem(EXPERIMENTS, "doomed", doomed)
        code = main(["run", "doomed"])
        assert code == 1
        assert "FAILED doomed" in capsys.readouterr().err

    def test_run_fails_when_verification_fails(self, capsys, monkeypatch):
        def unverified(*, fast=True, seed=0):
            return ExperimentResult(
                "unverified",
                summary={"supervised_completed": True, "verified": False},
                tables=[],
            )

        monkeypatch.setitem(EXPERIMENTS, "unverified", unverified)
        assert main(["run", "unverified"]) == 1

    def test_unsupervised_failure_alone_is_not_an_error(self, capsys, monkeypatch):
        # Bare-engine failure is the *demonstration* in fault experiments;
        # only the supervised/verified outcome drives the exit code.
        def demo(*, fast=True, seed=0):
            return ExperimentResult(
                "demo",
                summary={"unsupervised_completed": False, "supervised_completed": True},
                tables=[],
            )

        monkeypatch.setitem(EXPERIMENTS, "demo", demo)
        assert main(["run", "demo"]) == 0
