"""Resumable sweeps: a re-run of a completed grid skips every cell."""

from repro.harness.grid import run_grid
from repro.obs.store import ResultsStore


def _stats_by_metric(aggregates):
    return {
        (name, metric): stat
        for name, agg in aggregates.items()
        for metric, stat in agg.stats.items()
    }


def test_rerun_skips_completed_cells_and_appends_nothing(tmp_path):
    db = tmp_path / "results.db"

    first = run_grid(["figure1"], [0, 1], store=db)
    assert first.ok
    assert first.skipped == []
    store = ResultsStore(db)
    assert store.counts()["runs"] == 2

    second = run_grid(["figure1"], [0, 1], store=db)
    assert second.ok
    assert sorted(second.skipped) == [("figure1", 0), ("figure1", 1)]
    # No new rows: the whole grid was served from the store.
    assert store.counts()["runs"] == 2

    # Aggregates rebuilt from stored metrics match the fresh run key-by-key.
    assert _stats_by_metric(second.aggregates) == _stats_by_metric(first.aggregates)


def test_partial_grid_only_runs_missing_cells(tmp_path):
    db = tmp_path / "results.db"
    run_grid(["figure1"], [0], store=db)
    store = ResultsStore(db)
    assert store.counts()["runs"] == 1

    widened = run_grid(["figure1"], [0, 1, 2], store=db)
    assert widened.ok
    assert widened.skipped == [("figure1", 0)]
    assert store.counts()["runs"] == 3
    assert len(widened.aggregates["figure1"].runs) == 3


def test_resume_false_recomputes_everything(tmp_path):
    db = tmp_path / "results.db"
    run_grid(["figure1"], [0], store=db)
    store = ResultsStore(db)
    assert store.counts()["runs"] == 1

    again = run_grid(["figure1"], [0], store=db, resume=False)
    assert again.ok
    assert again.skipped == []
    # The recomputed cell has a fresh wall-start, so it lands as a new row:
    # the store stays append-only even for repeated cells.
    assert store.counts()["runs"] == 2


def test_grid_without_store_still_runs(tmp_path):
    result = run_grid(["figure1"], [0])
    assert result.ok
    assert result.skipped == []
    assert "figure1" in result.aggregates
