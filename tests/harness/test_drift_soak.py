"""Drift soak invariants and the CLI's failure-mode surfacing."""

from repro.harness.cli import (
    EXIT_BUDGET_EXHAUSTED,
    _failure_mode,
    _merge_exit,
    main,
)
from repro.harness.drift import (
    DriftSoakConfig,
    render_drift_soak_report,
    run_drift_soak,
)


class TestDriftSoak:
    def test_quick_preset_all_invariants_hold(self, tmp_path):
        report = run_drift_soak(DriftSoakConfig.quick(), out_dir=tmp_path)
        assert report["all_passed"], report["failed_cases"]
        assert {c["scenario"] for c in report["cases"]} == {
            "network_ramp", "read_step", "rollback",
        }
        assert report["total_promotions"] >= 2
        assert report["total_rollbacks"] >= 1
        assert report["max_detection_latency_s"] <= DriftSoakConfig().latency_bound_s
        assert (tmp_path / "drift_soak_report.json").exists()

    def test_same_root_seed_identical_fingerprints(self, tmp_path):
        config = DriftSoakConfig(cases=1, determinism_check=False)
        one = run_drift_soak(config, out_dir=tmp_path / "a")
        two = run_drift_soak(config, out_dir=tmp_path / "b")
        assert [c["fingerprint"] for c in one["cases"]] == [
            c["fingerprint"] for c in two["cases"]
        ]

    def test_parallel_identical_to_serial(self, tmp_path):
        serial = run_drift_soak(
            DriftSoakConfig(cases=3, determinism_check=False, workers=1),
            out_dir=tmp_path / "serial",
        )
        pooled = run_drift_soak(
            DriftSoakConfig(cases=3, determinism_check=False, workers=3),
            out_dir=tmp_path / "pooled",
        )
        assert [c["fingerprint"] for c in serial["cases"]] == [
            c["fingerprint"] for c in pooled["cases"]
        ]

    def test_render_lists_every_case(self, tmp_path):
        report = run_drift_soak(
            DriftSoakConfig(cases=1, determinism_check=False), out_dir=tmp_path
        )
        rendered = render_drift_soak_report(report)
        assert "network_ramp" in rendered
        assert "ALL INVARIANTS HELD" in rendered

    def test_cli_drift_soak_exit_zero(self, tmp_path, capsys):
        code = main(["soak", "--drift", "--quick", "--out", str(tmp_path / "run")])
        assert code == 0
        assert "drift soak" in capsys.readouterr().out


class TestFailureModes:
    def test_failure_mode_classification(self):
        assert _failure_mode({"supervised_completed": True}) is None
        assert _failure_mode({}) is None  # experiments without the flag
        assert (
            _failure_mode(
                {"supervised_completed": False, "supervised_budget_exhausted": True}
            )
            == "budget_exhausted"
        )
        assert (
            _failure_mode(
                {"supervised_completed": False, "supervised_budget_exhausted": False}
            )
            == "failed"
        )

    def test_merge_exit_generic_failure_wins(self):
        assert _merge_exit(0, "budget_exhausted") == EXIT_BUDGET_EXHAUSTED
        assert _merge_exit(0, "failed") == 1
        assert _merge_exit(1, "budget_exhausted") == 1  # generic 1 sticks
        assert _merge_exit(EXIT_BUDGET_EXHAUSTED, "failed") == 1

    def test_budget_exhaustion_reported_distinctly(self, capsys):
        from repro.harness.cli import _report_failure

        _report_failure("x", "budget_exhausted")
        _report_failure("y", "failed")
        err = capsys.readouterr().err
        assert "BUDGET EXHAUSTED x" in err and "max_elapsed" in err
        assert "FAILED y" in err
        assert "not a stall timeout" in err
