"""CLI pipeline subcommands: explore / train / transfer."""

import json

from repro.harness.cli import main


class TestExploreCommand:
    def test_explore_preset(self, capsys, tmp_path):
        out_file = tmp_path / "profile.json"
        code = main(
            ["explore", "--preset", "fig5-read", "--duration", "30", "--out", str(out_file)]
        )
        assert code == 0
        blob = json.loads(out_file.read_text())
        assert min(blob["bandwidth"]) > 0
        assert "optimal threads" in capsys.readouterr().out

    def test_unknown_preset(self, capsys):
        assert main(["explore", "--preset", "not-a-preset"]) == 2
        assert "unknown preset" in capsys.readouterr().err


class TestTrainTransferCommands:
    def test_train_then_transfer(self, capsys, tmp_path, monkeypatch):
        """Tiny-budget end-to-end CLI flow."""
        ckpt = tmp_path / "ckpt"
        code = main(
            [
                "train",
                "--preset", "fig5-read",
                "--episodes", "8",
                "--exploration", "20",
                "--out", str(ckpt),
            ]
        )
        assert code == 0
        assert ckpt.with_suffix(".npz").exists()
        out = capsys.readouterr().out
        assert "checkpoint saved" in out

        code = main(
            [
                "transfer",
                "--preset", "fig5-read",
                "--checkpoint", str(ckpt),
                "--gb", "3",
                "--deterministic",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed=True" in out

    def test_transfer_unknown_preset(self):
        assert main(["transfer", "--preset", "nope", "--checkpoint", "x"]) == 2


class TestRunSeeds:
    def test_seeded_aggregate_output(self, capsys):
        code = main(["run", "k_sweep", "--seeds", "0,1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "over seeds [0, 1]" in out
        assert "best_k" in out
