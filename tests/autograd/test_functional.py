"""Composite differentiable functions: losses, softmax, Gaussian densities."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.autograd.functional import (
    clipped_ratio,
    gaussian_entropy,
    gaussian_log_prob,
    log_softmax,
    mse_loss,
    softmax,
)
from repro.autograd.tensor import Tensor


class TestMseLoss:
    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_gradient(self):
        pred = Tensor(np.array([3.0]), requires_grad=True)
        mse_loss(pred, np.array([1.0])).backward()
        assert pred.grad[0] == pytest.approx(4.0)  # 2(3-1)/1


class TestSoftmax:
    def test_normalizes(self):
        p = softmax(Tensor(np.random.default_rng(0).standard_normal((4, 6))))
        np.testing.assert_allclose(p.data.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([1.0, 2.0, 3.0])
        a = softmax(Tensor(logits)).data
        b = softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).standard_normal(5))
        np.testing.assert_allclose(log_softmax(logits).data, np.log(softmax(logits).data))

    def test_numerically_stable_at_extremes(self):
        out = softmax(Tensor(np.array([1000.0, 0.0]))).data
        assert np.isfinite(out).all()


class TestGaussianLogProb:
    def test_matches_scipy(self):
        rng = np.random.default_rng(2)
        mean = rng.standard_normal(3)
        log_std = rng.standard_normal(3) * 0.3
        x = rng.standard_normal(3)
        ours = gaussian_log_prob(x, Tensor(mean), Tensor(log_std)).item()
        expected = stats.norm.logpdf(x, loc=mean, scale=np.exp(log_std)).sum()
        assert ours == pytest.approx(expected)

    def test_batched_shape(self):
        lp = gaussian_log_prob(np.zeros((5, 3)), Tensor(np.zeros((5, 3))), Tensor(np.zeros(3)))
        assert lp.shape == (5,)

    def test_standard_normal_at_zero(self):
        lp = gaussian_log_prob(np.zeros(1), Tensor(np.zeros(1)), Tensor(np.zeros(1)))
        assert lp.item() == pytest.approx(-0.5 * math.log(2 * math.pi))


class TestGaussianEntropy:
    def test_matches_scipy(self):
        log_std = np.array([0.1, -0.5, 0.3])
        ours = gaussian_entropy(Tensor(log_std)).item()
        expected = sum(stats.norm.entropy(scale=np.exp(s)) for s in log_std)
        assert ours == pytest.approx(expected)

    def test_monotone_in_std(self):
        low = gaussian_entropy(Tensor(np.array([-1.0]))).item()
        high = gaussian_entropy(Tensor(np.array([1.0]))).item()
        assert high > low


class TestClippedRatio:
    def test_ratio_of_one_when_unchanged(self):
        lp = Tensor(np.array([-1.0, -2.0]), requires_grad=True)
        ratio, clipped = clipped_ratio(lp, np.array([-1.0, -2.0]), epsilon=0.2)
        np.testing.assert_allclose(ratio.data, 1.0)
        np.testing.assert_allclose(clipped.data, 1.0)

    def test_clipping_bounds(self):
        lp_new = Tensor(np.array([0.0]))
        _, clipped = clipped_ratio(lp_new, np.array([-5.0]), epsilon=0.2)
        assert clipped.data[0] == pytest.approx(1.2)
