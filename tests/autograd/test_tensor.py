"""Autograd engine: gradients verified against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import (
    Tensor,
    clip,
    concat,
    exp,
    layernorm,
    log,
    maximum,
    minimum,
    no_grad,
    relu,
    sqrt,
    stack,
    tanh,
    where,
)


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued f at array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        g[i] = (f(xp) - f(xm)) / (2 * eps)
    return g


def check_grad(op, x_data, tol=1e-6):
    """Compare autograd gradient of sum(op(x)) with finite differences."""
    x = Tensor(x_data, requires_grad=True)
    out = op(x).sum()
    out.backward()
    expected = numeric_grad(lambda d: np.asarray(op(Tensor(d)).data).sum(), x_data)
    np.testing.assert_allclose(x.grad, expected, atol=tol, rtol=1e-4)


RNG = np.random.default_rng(0)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op",
        [tanh, relu, exp, lambda t: log(t + 3.0), lambda t: sqrt(t + 3.0),
         lambda t: t * t, lambda t: t**3, lambda t: 1.0 / (t + 3.0)],
        ids=["tanh", "relu", "exp", "log", "sqrt", "square", "cube", "recip"],
    )
    def test_against_numeric(self, op):
        check_grad(op, RNG.standard_normal((3, 4)))

    def test_clip_gradient_masks(self):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])


class TestBroadcasting:
    def test_add_broadcast_bias(self):
        x = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        b = Tensor(RNG.standard_normal(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_array_equal(b.grad, np.full(3, 5.0))
        np.testing.assert_array_equal(x.grad, np.ones((5, 3)))

    def test_mul_broadcast_scalar_tensor(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        s = Tensor(np.array(3.0), requires_grad=True)
        (x * s).sum().backward()
        assert s.grad == pytest.approx(3.0)
        np.testing.assert_array_equal(x.grad, [3.0, 3.0])

    def test_div_broadcast(self):
        a = Tensor(RNG.standard_normal((2, 3)) + 5, requires_grad=True)
        b = Tensor(RNG.standard_normal(3) + 5, requires_grad=True)
        (a / b).sum().backward()
        expected_b = -(a.data / b.data**2).sum(axis=0)
        np.testing.assert_allclose(b.grad, expected_b)


class TestMatmul:
    def test_matrix_matrix(self):
        a = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        b = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((4, 2)))

    def test_vector_matrix(self):
        v = Tensor(RNG.standard_normal(3), requires_grad=True)
        m = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        (v @ m).sum().backward()
        np.testing.assert_allclose(v.grad, m.data.sum(axis=1))

    def test_matrix_vector(self):
        m = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        v = Tensor(RNG.standard_normal(3), requires_grad=True)
        (m @ v).sum().backward()
        np.testing.assert_allclose(v.grad, m.data.sum(axis=0))

    def test_inner_product(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a @ b).backward()
        np.testing.assert_array_equal(a.grad, [3.0, 4.0])
        np.testing.assert_array_equal(b.grad, [1.0, 2.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        (x.sum(axis=1, keepdims=True) * Tensor(np.array([[2.0], [3.0]]))).sum().backward()
        np.testing.assert_array_equal(x.grad, [[2, 2, 2], [3, 3, 3]])

    def test_mean_gradient(self):
        x = Tensor(RNG.standard_normal(4), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_sum_negative_axis(self):
        x = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        x.sum(axis=-1).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3)))


class TestMinMaxWhere:
    def test_minimum_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        minimum(a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0])

    def test_maximum_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0])

    def test_where(self):
        a = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0])


class TestShapes:
    def test_reshape_roundtrip(self):
        x = Tensor(RNG.standard_normal((2, 6)), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 6)))

    def test_transpose(self):
        x = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        (x.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_array_equal(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem(self):
        x = Tensor(RNG.standard_normal(5), requires_grad=True)
        x[2].backward()
        np.testing.assert_array_equal(x.grad, [0, 0, 1, 0, 0])

    def test_stack_and_concat(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b]).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))
        a.zero_grad(), b.zero_grad()
        concat([a, b], axis=0).sum().backward()
        np.testing.assert_array_equal(b.grad, np.ones(3))


class TestLayerNorm:
    def test_against_numeric(self):
        x_data = RNG.standard_normal((3, 5))
        s = Tensor(RNG.standard_normal(5) + 1.0, requires_grad=True)
        b = Tensor(RNG.standard_normal(5), requires_grad=True)
        x = Tensor(x_data, requires_grad=True)
        layernorm(x, s, b).sum().backward()
        expected = numeric_grad(
            lambda d: np.asarray(layernorm(Tensor(d), Tensor(s.data), Tensor(b.data)).data).sum(),
            x_data,
        )
        np.testing.assert_allclose(x.grad, expected, atol=1e-6)

    def test_output_standardized(self):
        x = Tensor(RNG.standard_normal((10, 8)) * 7 + 3)
        out = layernorm(x, Tensor(np.ones(8)), Tensor(np.zeros(8))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * x + x).backward()  # d/dx (x² + x) = 2x + 1 = 5
        assert x.grad[0] == pytest.approx(5.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = tanh(x * 2.0)
        assert not y.requires_grad

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert not x.detach().requires_grad

    def test_diamond_graph(self):
        # f = (x+x) * x → df/dx = 4x
        x = Tensor(np.array([3.0]), requires_grad=True)
        ((x + x) * x).backward()
        assert x.grad[0] == pytest.approx(12.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_chain_gradient_property(self, rows, cols):
        """Property: gradient of sum(tanh(x W)) matches finite differences."""
        rng = np.random.default_rng(rows * 10 + cols)
        x_data = rng.standard_normal((rows, cols))
        w_data = rng.standard_normal((cols, 2))

        def f(d):
            return np.tanh(d @ w_data).sum()

        x = Tensor(x_data, requires_grad=True)
        tanh(x @ Tensor(w_data)).sum().backward()
        np.testing.assert_allclose(x.grad, numeric_grad(f, x_data), atol=1e-5)
