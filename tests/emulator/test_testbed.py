"""Testbed: coupled fluid flows, presets, dynamic throttles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import (
    NetworkConfig,
    StorageConfig,
    Testbed,
    TestbedConfig,
    cloudlab_1g,
    fabric_brist_indi,
    fabric_ncsa_tacc,
    fig5_network_bottleneck,
    fig5_read_bottleneck,
    fig5_write_bottleneck,
)
from repro.utils.errors import SimulationError
from repro.utils.units import GiB


def small_testbed(**overrides) -> TestbedConfig:
    defaults = dict(
        source=StorageConfig(tpt=80, bandwidth=1000),
        destination=StorageConfig(tpt=200, bandwidth=1000),
        network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
        sender_buffer_capacity=1.0 * GiB,
        receiver_buffer_capacity=1.0 * GiB,
        max_threads=30,
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)


class TestAdvance:
    def test_optimal_triple_saturates_bottleneck(self):
        tb = Testbed(small_testbed(), rng=0)
        for _ in range(5):
            flows = tb.advance((13, 7, 5))
        assert flows.throughput_write == pytest.approx(1000.0, rel=0.05)

    def test_byte_accounting(self):
        tb = Testbed(small_testbed(), rng=0)
        flows = tb.advance((13, 7, 5), duration=2.0)
        assert flows.bytes_read == pytest.approx(
            tb.total_read
        )
        # written <= networked <= read (pipeline ordering from empty buffers)
        assert flows.bytes_written <= flows.bytes_networked <= flows.bytes_read

    def test_read_available_caps_read(self):
        tb = Testbed(small_testbed(), rng=0)
        flows = tb.advance((13, 7, 5), read_available=1000.0)
        assert flows.bytes_read <= 1000.0

    def test_drain_after_source_exhausted(self):
        tb = Testbed(small_testbed(), rng=0)
        tb.advance((13, 7, 5), read_available=50e6)
        for _ in range(30):
            flows = tb.advance((13, 7, 5), read_available=0.0)
        assert flows.bytes_read == 0.0
        assert tb.sender_buffer.usage == pytest.approx(0.0, abs=1e-3)
        assert tb.total_written == pytest.approx(50e6, rel=0.01)

    def test_threads_clamped(self):
        tb = Testbed(small_testbed(), rng=0)
        flows = tb.advance((0, 500, 2.7))
        assert flows.threads == (1, 30, 3)

    def test_invalid_duration(self):
        tb = Testbed(small_testbed(), rng=0)
        with pytest.raises(Exception):
            tb.advance((1, 1, 1), duration=0.0)

    def test_file_efficiency_slows_stage(self):
        tb1, tb2 = Testbed(small_testbed(), rng=0), Testbed(small_testbed(), rng=0)
        fast = tb1.advance((13, 7, 5), file_efficiency=(1.0, 1.0, 1.0))
        slow = tb2.advance((13, 7, 5), file_efficiency=(0.5, 1.0, 1.0))
        assert slow.bytes_read < fast.bytes_read

    def test_deterministic_given_seed(self):
        a, b = Testbed(small_testbed(noise_sigma=0.05), rng=3), Testbed(
            small_testbed(noise_sigma=0.05), rng=3
        )
        fa = [a.advance((10, 5, 5)).throughput_write for _ in range(5)]
        fb = [b.advance((10, 5, 5)).throughput_write for _ in range(5)]
        assert fa == fb

    @settings(max_examples=15, deadline=None)
    @given(
        st.tuples(*([st.integers(min_value=1, max_value=30)] * 3)),
        st.integers(min_value=1, max_value=5),
    )
    def test_conservation_property(self, threads, steps):
        """Property: written bytes never exceed read bytes, and buffer
        occupancy accounts exactly for the difference."""
        tb = Testbed(small_testbed(), rng=0)
        for _ in range(steps):
            tb.advance(threads)
        in_flight = tb.sender_buffer.usage + tb.receiver_buffer.usage
        assert tb.total_written <= tb.total_read + 1e-6
        assert tb.total_read - tb.total_written == pytest.approx(in_flight, rel=1e-9, abs=1e-3)


class TestDynamics:
    def test_ramp_slows_sudden_stream_jump(self):
        cfg = small_testbed(network=NetworkConfig(tpt=160, capacity=1000, ramp_time=3.0))
        tb = Testbed(cfg, rng=0)
        tb.advance((13, 1, 5))  # establish 1 stream
        first = tb.advance((13, 20, 5))
        later = [tb.advance((13, 20, 5)) for _ in range(5)][-1]
        assert first.throughput_network < later.throughput_network

    def test_set_stage_tpt_changes_behaviour(self):
        tb = Testbed(small_testbed(), rng=0)
        before = tb.advance((5, 7, 5)).throughput_read
        tb.set_stage_tpt("read", 10.0)
        tb.reset()
        after = tb.advance((5, 7, 5)).throughput_read
        assert after < before * 0.5

    def test_set_stage_tpt_network_preserves_ramp(self):
        cfg = small_testbed(network=NetworkConfig(tpt=160, capacity=1000, ramp_time=3.0))
        tb = Testbed(cfg, rng=0)
        tb.advance((5, 10, 5))
        streams = tb.network.effective_streams
        tb.set_stage_tpt("network", 80.0)
        assert tb.network.effective_streams == streams

    def test_unknown_stage_raises(self):
        tb = Testbed(small_testbed(), rng=0)
        with pytest.raises(SimulationError):
            tb.set_stage_tpt("disk", 5.0)

    def test_reset_restores_clean_state(self):
        tb = Testbed(small_testbed(), rng=0)
        tb.advance((30, 1, 1))
        tb.reset()
        assert tb.now == 0.0
        assert tb.total_read == 0.0
        assert tb.sender_buffer.usage == 0.0


class TestPresets:
    @pytest.mark.parametrize(
        "factory,expected_optimal",
        [
            (fig5_read_bottleneck, (13, 7, 5)),
            (fig5_network_bottleneck, (5, 14, 6)),
            (fig5_write_bottleneck, (5, 7, 15)),
        ],
    )
    def test_fig5_optimal_triples(self, factory, expected_optimal):
        assert factory().optimal_threads() == expected_optimal

    def test_ncsa_tacc_bottleneck(self):
        cfg = fabric_ncsa_tacc()
        assert cfg.bottleneck_bandwidth == 25000.0
        assert cfg.optimal_threads()[1] == 20  # Fig. 3's target network level

    def test_cloudlab_is_1g(self):
        assert cloudlab_1g().network.capacity == 1000.0

    def test_brist_indi_write_limited(self):
        cfg = fabric_brist_indi()
        assert cfg.bottleneck_bandwidth == cfg.destination.bandwidth

    def test_presets_produce_runnable_testbeds(self):
        for factory in (cloudlab_1g, fabric_brist_indi, fabric_ncsa_tacc):
            tb = Testbed(factory(), rng=0)
            flows = tb.advance(factory().optimal_threads())
            assert flows.throughput_read > 0
