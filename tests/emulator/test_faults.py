"""Fault schedule semantics: windows, restarts, determinism."""

import pytest

from repro.emulator import (
    FaultSchedule,
    LinkFlap,
    NetworkConfig,
    ProbeDropout,
    ReceiverRestart,
    ReportLoss,
    StorageConfig,
    StorageStall,
    Testbed,
    TestbedConfig,
)
from repro.utils.errors import ConfigError
from repro.utils.units import GiB


class TestWindows:
    def test_half_open_interval(self):
        flap = LinkFlap(10.0, 5.0, requires_restart=False)
        assert not flap.active(9.99)
        assert flap.active(10.0)
        assert flap.active(14.99)
        assert not flap.active(15.0)
        assert flap.end == 15.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            LinkFlap(-1.0, 5.0)
        with pytest.raises(ConfigError):
            LinkFlap(0.0, 0.0)
        with pytest.raises(ConfigError):
            LinkFlap(0.0, 5.0, severity=1.5)
        with pytest.raises(ConfigError):
            StorageStall(0.0, 5.0, factor=-0.1)
        with pytest.raises(ValueError):
            StorageStall(0.0, 5.0, stage="bogus")
        with pytest.raises(ConfigError):
            ReceiverRestart(at=-1.0)


class TestNetworkScale:
    def test_zero_during_flap(self):
        sched = FaultSchedule(LinkFlap(10.0, 5.0))
        assert sched.network_scale(5.0) == 1.0
        assert sched.network_scale(12.0) == 0.0

    def test_partial_severity(self):
        sched = FaultSchedule(LinkFlap(10.0, 5.0, severity=0.5, requires_restart=False))
        assert sched.network_scale(12.0) == pytest.approx(0.5)
        assert sched.network_scale(20.0) == 1.0

    def test_requires_restart_keeps_path_dead_after_window(self):
        sched = FaultSchedule(LinkFlap(10.0, 5.0))
        assert sched.network_scale(100.0) == 0.0
        assert sched.active_kinds(100.0) == ("link_flap",)

    def test_restart_after_window_repairs_path(self):
        sched = FaultSchedule(LinkFlap(10.0, 5.0))
        sched.notify_restart(18.0)
        assert sched.network_scale(18.0) == 1.0
        assert sched.active_kinds(18.0) == ()

    def test_restart_before_window_end_does_not_repair(self):
        sched = FaultSchedule(LinkFlap(10.0, 5.0))
        sched.notify_restart(12.0)  # mid-flap: new connections die too
        assert sched.network_scale(20.0) == 0.0


class TestStorageAndControlPlane:
    def test_storage_scale_is_per_stage(self):
        sched = FaultSchedule(StorageStall(5.0, 10.0, stage="read", factor=0.25))
        assert sched.storage_scale("read", 7.0) == pytest.approx(0.25)
        assert sched.storage_scale("write", 7.0) == 1.0
        assert sched.storage_scale("read", 20.0) == 1.0

    def test_probe_dropout_and_report_loss_windows(self):
        sched = FaultSchedule([ProbeDropout(2.0, 3.0), ReportLoss(10.0, 5.0)])
        assert sched.probe_dropout(3.0)
        assert not sched.probe_dropout(8.0)
        assert sched.report_lost(12.0)
        assert not sched.report_lost(3.0)


class TestReceiverRestarts:
    def test_fires_once_in_interval(self):
        sched = FaultSchedule(ReceiverRestart(at=15.0))
        assert sched.take_receiver_restarts(0.0, 15.0) == 0
        assert sched.take_receiver_restarts(15.0, 15.05) == 1
        assert sched.take_receiver_restarts(15.0, 15.05) == 0  # never re-fires

    def test_notify_restart_rearms_only_future_events(self):
        sched = FaultSchedule([ReceiverRestart(at=5.0), ReceiverRestart(at=50.0)])
        assert sched.take_receiver_restarts(0.0, 60.0) == 2
        sched.notify_restart(20.0)  # resume at t=20: the t=5 event stays spent
        assert sched.take_receiver_restarts(0.0, 60.0) == 1

    def test_restart_clears_testbed_receiver_buffer(self):
        testbed = Testbed(
            TestbedConfig(
                source=StorageConfig(tpt=80, bandwidth=1000),
                destination=StorageConfig(tpt=200, bandwidth=1000),
                network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
                sender_buffer_capacity=1.0 * GiB,
                receiver_buffer_capacity=1.0 * GiB,
                max_threads=30,
            ),
            rng=0,
            faults=FaultSchedule(ReceiverRestart(at=0.5)),
        )
        testbed.advance((13, 7, 1), 0.4, read_available=5e9)  # throttled write
        staged_before = testbed.receiver_buffer.usage
        assert staged_before > 0
        testbed.advance((13, 7, 1), 0.2, read_available=5e9)  # crosses t=0.5
        # The restart wiped the staged bytes; only ~0.1 s of new inflow
        # re-accumulated, far less than the 0.4 s worth staged before.
        assert testbed.receiver_buffer.usage < staged_before


class TestRandomSchedules:
    def test_same_seed_same_events(self):
        a = FaultSchedule.random(7, horizon=120.0)
        b = FaultSchedule.random(7, horizon=120.0)
        assert a.events == b.events

    def test_different_seed_different_events(self):
        a = FaultSchedule.random(7, horizon=120.0)
        b = FaultSchedule.random(8, horizon=120.0)
        assert a.events != b.events

    def test_kinds_and_horizon_respected(self):
        sched = FaultSchedule.random(
            3, horizon=100.0, kinds=("link_flap", "probe_dropout"), events_per_kind=2
        )
        assert len(sched.events) == 4
        kinds = {e.kind for e in sched.events}
        assert kinds == {"link_flap", "probe_dropout"}
        for event in sched.events:
            assert 0.0 <= event.start <= 70.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(0, horizon=100.0, kinds=("cosmic_ray",))
