"""The named preset registry used by the CLI."""

import pytest

from repro.emulator.presets import PRESETS
from repro.emulator.testbed import TestbedConfig


class TestPresetRegistry:
    def test_expected_names(self):
        assert set(PRESETS) == {
            "cloudlab-1g",
            "fabric-brist-indi",
            "fabric-ncsa-tacc",
            "fig5-read",
            "fig5-network",
            "fig5-write",
        }

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_every_preset_builds_valid_config(self, name):
        config = PRESETS[name]()
        assert isinstance(config, TestbedConfig)
        optimal = config.optimal_threads()
        assert all(1 <= n <= config.max_threads for n in optimal)
        assert config.bottleneck_bandwidth > 0

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_deterministic(self, name):
        assert PRESETS[name]() == PRESETS[name]()
