"""Drift faults: ramp/step math, per-stream vs aggregate routing, bit-identity."""

import pytest

from repro.emulator import (
    BandwidthRamp,
    FaultSchedule,
    StepChange,
    Testbed,
    TestbedConfig,
)
from repro.emulator.noise import LinearDrift


# ----------------------------------------------------------------- windows
def test_bandwidth_ramp_scale_is_linear_then_held():
    ramp = BandwidthRamp(start=10.0, duration=10.0, to_scale=0.5)
    assert ramp.scale_at(0.0) == 1.0
    assert ramp.scale_at(10.0) == 1.0
    assert ramp.scale_at(15.0) == pytest.approx(0.75)
    assert ramp.scale_at(20.0) == 0.5
    assert ramp.scale_at(1000.0) == 0.5  # hold: a new operating point


def test_bandwidth_ramp_without_hold_reverts():
    ramp = BandwidthRamp(start=10.0, duration=10.0, to_scale=0.5, hold=False)
    assert ramp.scale_at(25.0) == 1.0


def test_bandwidth_ramp_can_improve_conditions():
    ramp = BandwidthRamp(start=0.0, duration=10.0, to_scale=2.0)
    assert ramp.scale_at(5.0) == pytest.approx(1.5)
    assert ramp.scale_at(20.0) == 2.0


def test_step_change_jumps_and_never_reverts():
    step = StepChange(start=10.0, duration=1.0, to_scale=0.4)
    assert step.scale_at(9.999) == 1.0
    assert step.scale_at(10.0) == 0.4
    assert step.scale_at(1000.0) == 0.4


@pytest.mark.parametrize("cls", [BandwidthRamp, StepChange])
def test_drift_stage_and_scale_validation(cls):
    with pytest.raises(ValueError):
        cls(start=0.0, duration=1.0, stage="gpu")
    with pytest.raises(Exception):
        cls(start=0.0, duration=1.0, to_scale=0.0)


def test_linear_drift_noise_model():
    drift = LinearDrift(start=5.0, duration=10.0, to_scale=0.5)
    assert drift.value_at(0.0) == 1.0
    assert drift.value_at(10.0) == pytest.approx(0.75)
    assert drift.value_at(100.0) == 0.5
    revert = LinearDrift(start=5.0, duration=10.0, to_scale=0.5, hold=False)
    assert revert.value_at(100.0) == 1.0


# ---------------------------------------------------------------- schedule
def test_per_stream_drift_routes_to_tpt_scale_only():
    schedule = FaultSchedule(
        [BandwidthRamp(start=0.0, duration=10.0, to_scale=0.5, stage="network")]
    )
    assert schedule.has_tpt_drift
    assert schedule.tpt_scale("network", 5.0) == pytest.approx(0.75)
    assert schedule.tpt_scale("read", 5.0) == 1.0
    assert schedule.network_scale(5.0) == 1.0  # aggregate path untouched


def test_aggregate_drift_routes_to_stage_scales():
    schedule = FaultSchedule(
        [
            BandwidthRamp(
                start=0.0, duration=10.0, to_scale=0.5, stage="network", per_stream=False
            ),
            StepChange(
                start=0.0, duration=1.0, to_scale=0.8, stage="read", per_stream=False
            ),
        ]
    )
    assert not schedule.has_tpt_drift
    assert schedule.network_scale(5.0) == pytest.approx(0.75)
    assert schedule.storage_scale("read", 5.0) == pytest.approx(0.8)
    assert schedule.tpt_scale("network", 5.0) == 1.0


def test_multiple_drifts_on_one_stage_compound():
    schedule = FaultSchedule(
        [
            StepChange(start=0.0, duration=1.0, to_scale=0.5, stage="write"),
            StepChange(start=2.0, duration=1.0, to_scale=0.5, stage="write"),
        ]
    )
    assert schedule.tpt_scale("write", 1.0) == 0.5
    assert schedule.tpt_scale("write", 3.0) == 0.25


# ------------------------------------------------------------ bit-identity
def _advance_trace(faults):
    testbed = Testbed(TestbedConfig(), rng=7, faults=faults)
    trace = []
    total = 0.0
    for _ in range(30):
        flows = testbed.advance((4, 4, 4), 1.0)
        total += flows.bytes_written
        trace.append(
            (total, flows.throughput_read, flows.throughput_network, flows.throughput_write)
        )
    return trace


def test_advance_without_drift_is_bit_identical_to_no_faults():
    """The drift-gated recompute path must not perturb undrifted runs."""
    baseline = _advance_trace(None)
    empty = _advance_trace(FaultSchedule([]))
    assert empty == baseline
    # A unity-scale drift exercises the per-substep recompute path with
    # scale 1.0 — multiplying by 1.0 is IEEE-exact, so still identical.
    unity = _advance_trace(
        FaultSchedule([StepChange(start=0.0, duration=1.0, to_scale=1.0)])
    )
    assert unity == baseline


def test_per_stream_network_drift_slows_transfer():
    baseline = _advance_trace(None)
    drifted = _advance_trace(
        FaultSchedule(
            [BandwidthRamp(start=5.0, duration=5.0, to_scale=0.4, stage="network")]
        )
    )
    assert drifted[-1][0] < baseline[-1][0]
