"""Staging buffers and noise processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import StagingBuffer
from repro.emulator.noise import BackgroundTraffic, MultiplicativeNoise
from repro.utils.errors import SimulationError


class TestStagingBuffer:
    def test_deposit_withdraw(self):
        buf = StagingBuffer(100.0)
        assert buf.deposit(30.0) == 30.0
        assert buf.usage == 30.0
        assert buf.withdraw(10.0) == 10.0
        assert buf.usage == 20.0

    def test_deposit_clamped_at_capacity(self):
        buf = StagingBuffer(100.0, usage=90.0)
        assert buf.deposit(50.0) == 10.0
        assert buf.free == 0.0

    def test_withdraw_clamped_at_zero(self):
        buf = StagingBuffer(100.0, usage=5.0)
        assert buf.withdraw(50.0) == 5.0
        assert buf.usage == 0.0

    def test_fill_fraction(self):
        assert StagingBuffer(200.0, usage=50.0).fill_fraction == 0.25

    def test_negative_amounts_rejected(self):
        buf = StagingBuffer(10.0)
        with pytest.raises(SimulationError):
            buf.deposit(-1.0)
        with pytest.raises(SimulationError):
            buf.withdraw(-1.0)

    def test_initial_overflow_rejected(self):
        with pytest.raises(SimulationError):
            StagingBuffer(10.0, usage=11.0)

    def test_reset(self):
        buf = StagingBuffer(10.0, usage=5.0)
        buf.reset()
        assert buf.usage == 0.0
        with pytest.raises(SimulationError):
            buf.reset(usage=20.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.floats(0, 50)), max_size=30))
    def test_invariants_property(self, ops):
        """Property: usage always stays in [0, capacity]; deposits+withdrawals
        conserve bytes."""
        buf = StagingBuffer(100.0)
        balance = 0.0
        for is_deposit, amount in ops:
            moved = buf.deposit(amount) if is_deposit else buf.withdraw(amount)
            balance += moved if is_deposit else -moved
            assert 0.0 <= buf.usage <= buf.capacity
        assert buf.usage == pytest.approx(balance)


class TestMultiplicativeNoise:
    def test_zero_sigma_is_constant_one(self):
        noise = MultiplicativeNoise(0.0)
        assert all(noise.step() == 1.0 for _ in range(5))

    def test_stays_positive(self):
        noise = MultiplicativeNoise(0.2, rng=0)
        values = [noise.step() for _ in range(500)]
        assert min(values) > 0.0

    def test_mean_reverts_to_one(self):
        noise = MultiplicativeNoise(0.05, rho=0.5, rng=0)
        values = np.array([noise.step() for _ in range(3000)])
        assert abs(values.mean() - 1.0) < 0.02

    def test_reset(self):
        noise = MultiplicativeNoise(0.3, rng=0)
        noise.step()
        noise.reset()
        assert noise.value == 1.0

    def test_deterministic_for_seed(self):
        a = MultiplicativeNoise(0.1, rng=42)
        b = MultiplicativeNoise(0.1, rng=42)
        assert [a.step() for _ in range(10)] == [b.step() for _ in range(10)]


class TestBackgroundTrafficTime:
    def test_monotone_time_queries(self):
        bg = BackgroundTraffic(peak=100.0, mean_holding_time=2.0, rng=1)
        levels = [bg.level_at(float(t)) for t in range(50)]
        assert all(0 <= lv <= 100.0 for lv in levels)

    def test_changes_over_long_horizon(self):
        bg = BackgroundTraffic(peak=100.0, mean_holding_time=1.0, rng=1)
        levels = {round(bg.level_at(float(t)), 6) for t in range(100)}
        assert len(levels) > 3
