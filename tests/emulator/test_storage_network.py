"""Storage device and network path models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import NetworkConfig, NetworkPath, StorageConfig, StorageDevice
from repro.emulator.noise import BackgroundTraffic
from repro.utils.errors import ConfigError


class TestStorageDevice:
    def test_linear_scaling_below_saturation(self):
        dev = StorageDevice(StorageConfig(tpt=100, bandwidth=1000))
        assert dev.aggregate_rate(5) == pytest.approx(500.0)

    def test_ceiling_at_bandwidth(self):
        dev = StorageDevice(StorageConfig(tpt=100, bandwidth=1000, degradation_alpha=0.0))
        assert dev.aggregate_rate(20) == pytest.approx(1000.0)

    def test_over_concurrency_degrades(self):
        dev = StorageDevice(StorageConfig(tpt=100, bandwidth=1000))
        at_knee = dev.aggregate_rate(dev.config.knee)
        far_past = dev.aggregate_rate(dev.config.knee + 20)
        assert far_past < at_knee

    def test_zero_threads_zero_rate(self):
        dev = StorageDevice(StorageConfig())
        assert dev.aggregate_rate(0) == 0.0

    def test_efficiency_is_one_at_or_below_knee(self):
        dev = StorageDevice(StorageConfig(tpt=100, bandwidth=1000))
        assert dev.efficiency(dev.config.knee) == 1.0

    def test_file_efficiency_scales(self):
        dev = StorageDevice(StorageConfig(tpt=100, bandwidth=1000))
        assert dev.aggregate_rate(5, file_efficiency=0.5) == pytest.approx(250.0)

    def test_explicit_knee(self):
        cfg = StorageConfig(tpt=100, bandwidth=1000, degradation_knee=3)
        assert cfg.knee == 3

    def test_default_knee_past_saturation(self):
        cfg = StorageConfig(tpt=100, bandwidth=1000)
        assert cfg.knee == cfg.saturation_threads + 2

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            StorageConfig(tpt=-1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_rate_bounded_property(self, threads):
        """Property: aggregate rate never exceeds the device ceiling."""
        dev = StorageDevice(StorageConfig(tpt=100, bandwidth=1000))
        assert 0.0 <= dev.aggregate_rate(threads) <= 1000.0


class TestNetworkPath:
    def test_per_stream_cap(self):
        path = NetworkPath(NetworkConfig(tpt=100, capacity=1000, ramp_time=0.0))
        assert path.aggregate_rate(3, t=0.0) == pytest.approx(300.0)

    def test_capacity_ceiling(self):
        path = NetworkPath(NetworkConfig(tpt=100, capacity=1000, ramp_time=0.0,
                                         degradation_alpha=0.0))
        assert path.aggregate_rate(50, t=0.0) == pytest.approx(1000.0)

    def test_congestion_collapse_past_knee(self):
        cfg = NetworkConfig(tpt=100, capacity=1000, ramp_time=0.0)
        path = NetworkPath(cfg)
        assert path.aggregate_rate(cfg.knee + 30, 0.0) < path.aggregate_rate(cfg.knee, 0.0)

    def test_background_traffic_steals_capacity(self):
        bg = BackgroundTraffic(peak=500.0, mean_holding_time=1e9, rng=0)
        bg._level, bg._until = 400.0, 1e12  # pin a known level
        path = NetworkPath(NetworkConfig(tpt=100, capacity=1000, ramp_time=0.0), bg)
        assert path.aggregate_rate(20, t=1.0) <= 600.0 * 1.01

    def test_ramp_limits_fresh_connections(self):
        path = NetworkPath(NetworkConfig(tpt=100, capacity=10000, ramp_time=2.0))
        streams = path.advance_ramp(20, dt=0.1)
        assert streams < 20

    def test_ramp_reaches_target(self):
        path = NetworkPath(NetworkConfig(tpt=100, capacity=10000, ramp_time=2.0))
        for _ in range(100):
            streams = path.advance_ramp(20, dt=0.1)
        assert streams == pytest.approx(20.0)

    def test_closing_connections_immediate(self):
        path = NetworkPath(NetworkConfig(ramp_time=2.0))
        path.advance_ramp(20, dt=10.0)
        assert path.advance_ramp(5, dt=0.01) == 5.0

    def test_reset(self):
        path = NetworkPath(NetworkConfig())
        path.advance_ramp(10, dt=10.0)
        path.reset()
        assert path.effective_streams == 0.0

    def test_zero_ramp_time_instant(self):
        path = NetworkPath(NetworkConfig(ramp_time=0.0))
        assert path.advance_ramp(15, dt=0.001) == 15.0


class TestBackgroundTraffic:
    def test_disabled_when_peak_zero(self):
        bg = BackgroundTraffic(0.0)
        assert bg.level_at(100.0) == 0.0

    def test_level_within_peak(self):
        bg = BackgroundTraffic(peak=300.0, mean_holding_time=5.0, rng=0)
        for t in range(0, 100, 7):
            assert 0.0 <= bg.level_at(float(t)) <= 300.0

    def test_piecewise_constant_within_holding(self):
        bg = BackgroundTraffic(peak=300.0, mean_holding_time=1e6, rng=0)
        assert bg.level_at(1.0) == bg.level_at(2.0)

    def test_reset(self):
        bg = BackgroundTraffic(peak=300.0, rng=0)
        bg.level_at(50.0)
        bg.reset()
        assert bg._until == 0.0
