"""Data-plane fault semantics: corruption windows, fire-once instants."""

import pytest

from repro.emulator import (
    DataCorruption,
    FaultSchedule,
    SilentTruncation,
    TornWrite,
)
from repro.utils.errors import ConfigError


class TestValidation:
    def test_corruption_rate_and_site(self):
        with pytest.raises(ConfigError):
            DataCorruption(start=0.0, duration=5.0, rate=1.5)
        with pytest.raises(ValueError):
            DataCorruption(start=0.0, duration=5.0, site="bogus")

    def test_zero_length_window_rejected(self):
        # Fault windows are half-open [start, start+duration); zero length
        # would be a window that can never fire — rejected at construction.
        with pytest.raises(ConfigError):
            DataCorruption(start=5.0, duration=0.0)

    def test_instant_events(self):
        with pytest.raises(ConfigError):
            TornWrite(at=-1.0)
        with pytest.raises(ConfigError):
            SilentTruncation(at=1.0, chunks=0)


class TestCorruptionRate:
    def test_window_semantics(self):
        sched = FaultSchedule(DataCorruption(start=10.0, duration=5.0, rate=0.2))
        assert sched.corruption_rate(9.99) == 0.0
        assert sched.corruption_rate(10.0) == pytest.approx(0.2)
        assert sched.corruption_rate(14.99) == pytest.approx(0.2)
        assert sched.corruption_rate(15.0) == 0.0

    def test_overlapping_windows_compose_independently(self):
        # Two overlapping in-flight windows: survival multiplies, so the
        # composite rate is 1 - (1-0.2)(1-0.5) = 0.6 — never above 1.
        sched = FaultSchedule(
            [
                DataCorruption(start=0.0, duration=10.0, rate=0.2),
                DataCorruption(start=5.0, duration=10.0, rate=0.5),
            ]
        )
        assert sched.corruption_rate(2.0) == pytest.approx(0.2)
        assert sched.corruption_rate(7.0) == pytest.approx(0.6)
        assert sched.corruption_rate(12.0) == pytest.approx(0.5)

    def test_storage_site_does_not_affect_inflight_rate(self):
        sched = FaultSchedule(
            DataCorruption(start=0.0, duration=10.0, rate=0.9, site="storage")
        )
        assert sched.corruption_rate(5.0) == 0.0


class TestDataInstants:
    def test_fire_once_in_time_order(self):
        sched = FaultSchedule(
            [
                SilentTruncation(at=8.0, chunks=2),
                TornWrite(at=3.0),
                DataCorruption(start=5.0, duration=2.0, rate=0.1, site="storage"),
            ]
        )
        fired = sched.take_data_events(0.0, 10.0)
        assert [e.kind for e in fired] == [
            "torn_write",
            "data_corruption",  # at-rest: strikes at its window start (5.0)
            "silent_truncation",
        ]
        assert sched.take_data_events(0.0, 10.0) == []  # never re-fires

    def test_half_open_interval(self):
        sched = FaultSchedule(TornWrite(at=5.0))
        assert sched.take_data_events(0.0, 5.0) == []  # [t0, t1) excludes 5.0
        assert len(sched.take_data_events(5.0, 5.1)) == 1

    def test_inflight_corruption_is_not_an_instant(self):
        sched = FaultSchedule(DataCorruption(start=5.0, duration=2.0, rate=0.1))
        assert sched.take_data_events(0.0, 100.0) == []

    def test_notify_restart_rearms_only_future_instants(self):
        sched = FaultSchedule([TornWrite(at=5.0), TornWrite(at=50.0)])
        assert len(sched.take_data_events(0.0, 60.0)) == 2
        sched.notify_restart(20.0)  # resume at t=20: the t=5 tear stays spent
        fired = sched.take_data_events(0.0, 60.0)
        assert [e.at for e in fired] == [50.0]
