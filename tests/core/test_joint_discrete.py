"""Joint (n_max³) discrete-action variant — the Fig. 4 failure case."""

import numpy as np
import pytest

from repro.core.discrete import (
    JointDiscreteActionAdapter,
    JointDiscretePolicyNetwork,
    JointDiscretePPOAgent,
)
from repro.core.env import SimulatorEnv
from repro.core.ppo import PPOConfig
from repro.core.training import TrainingConfig, train
from repro.simulator import SimulatorConfig


def sim_env(seed=0):
    return SimulatorEnv(
        SimulatorConfig(
            tpt_read=80, tpt_network=160, tpt_write=200,
            bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
            max_threads=10,
        ),
        rng=seed,
    )


def tiny_ppo():
    return PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1)


class TestJointPolicyNetwork:
    def test_action_count(self):
        net = JointDiscretePolicyNetwork(8, max_threads=10, hidden_dim=16, num_blocks=1, rng=0)
        assert net.num_actions == 1000
        assert net(np.zeros(8)).logits.shape == (1000,)

    def test_decode_roundtrip(self):
        net = JointDiscretePolicyNetwork(8, max_threads=10, hidden_dim=16, num_blocks=1, rng=0)
        for idx, expected in [(0, (1, 1, 1)), (999, (10, 10, 10)), (123, (2, 3, 4))]:
            np.testing.assert_array_equal(net.decode(idx), expected)

    def test_decode_batched(self):
        net = JointDiscretePolicyNetwork(8, max_threads=10, hidden_dim=16, num_blocks=1, rng=0)
        out = net.decode(np.array([0, 999]))
        assert out.shape == (2, 3)

    def test_rejects_huge_space(self):
        with pytest.raises(ValueError):
            JointDiscretePolicyNetwork(8, max_threads=100, hidden_dim=16, num_blocks=1, rng=0)


class TestJointAgent:
    def test_act_returns_flat_index(self):
        agent = JointDiscretePPOAgent(8, max_threads=10, config=tiny_ppo(), rng=0)
        action, lp = agent.act(np.zeros(8))
        assert action.shape == (1,)
        assert 0 <= action[0] < 1000

    def test_trains_via_generic_loop(self):
        env = JointDiscreteActionAdapter(sim_env(), 10)
        agent = JointDiscretePPOAgent(8, max_threads=10, config=tiny_ppo(), rng=0)
        result = train(agent, env, TrainingConfig(max_episodes=12, stagnation_episodes=12))
        assert result.episodes_run == 12
        assert np.isfinite(result.episode_rewards).all()

    def test_state_dict_roundtrip(self):
        a = JointDiscretePPOAgent(8, max_threads=10, config=tiny_ppo(), rng=0)
        b = JointDiscretePPOAgent(8, max_threads=10, config=tiny_ppo(), rng=1)
        b.load_state_dict(a.state_dict())
        s = np.zeros(8)
        assert a.act(s, deterministic=True)[0] == b.act(s, deterministic=True)[0]


class TestJointAdapter:
    def test_index_decoding_applied(self):
        env = sim_env()
        adapter = JointDiscreteActionAdapter(env, 10)
        adapter.reset()
        # index 123 -> (2, 3, 4)
        _, _, _, info = adapter.step(np.array([123]))
        assert info["threads"] == (2, 3, 4)

    def test_action_mode_restored(self):
        env = sim_env()
        adapter = JointDiscreteActionAdapter(env, 10)
        adapter.reset()
        adapter.step(np.array([0]))
        assert env.action_mode == "normalized"
