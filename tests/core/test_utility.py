"""The utility/reward function (§IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import DEFAULT_K, UtilityFunction
from repro.utils.errors import ConfigError


class TestConstruction:
    def test_default_k(self):
        assert UtilityFunction().k == DEFAULT_K == 1.02

    def test_rejects_k_below_one(self):
        with pytest.raises(ConfigError):
            UtilityFunction(0.9)

    def test_k_exactly_one_allowed(self):
        # k=1 disables the thread penalty (pure throughput objective).
        u = UtilityFunction(1.0)
        assert u((100, 100, 100), (1, 30, 1)) == pytest.approx(300.0)


class TestValue:
    def test_formula(self):
        u = UtilityFunction(1.02)
        expected = 800 / 1.02**13 + 900 / 1.02**7 + 1000 / 1.02**5
        assert u((800, 900, 1000), (13, 7, 5)) == pytest.approx(expected)

    def test_stage_utility(self):
        u = UtilityFunction(1.02)
        assert u.stage_utility(500, 10) == pytest.approx(500 / 1.02**10)

    def test_wrong_shapes_rejected(self):
        u = UtilityFunction()
        with pytest.raises(ConfigError):
            u((1, 2), (1, 2, 3))

    @settings(max_examples=30, deadline=None)
    @given(
        st.tuples(*([st.floats(min_value=0, max_value=1e5)] * 3)),
        st.tuples(*([st.integers(min_value=1, max_value=100)] * 3)),
    )
    def test_more_threads_never_increase_utility_at_fixed_throughput(self, tputs, threads):
        """Property: with throughput held fixed, adding threads only costs."""
        u = UtilityFunction(1.02)
        more = tuple(n + 1 for n in threads)
        assert u(tputs, more) <= u(tputs, threads) + 1e-9

    def test_higher_throughput_higher_utility(self):
        u = UtilityFunction()
        assert u((1000, 1000, 1000), (5, 5, 5)) > u((500, 500, 500), (5, 5, 5))


class TestBatch:
    def test_rows_bit_identical_to_scalar_calls(self):
        """One vectorized call == N scalar calls, down to the last bit."""
        u = UtilityFunction(1.02)
        rng = np.random.default_rng(4)
        tputs = rng.uniform(0.0, 2000.0, (17, 3))
        threads = rng.integers(1, 40, (17, 3)).astype(float)
        got = u.batch(tputs, threads)
        assert got.shape == (17,)
        for i in range(17):
            assert got[i] == u(tputs[i], threads[i]), i

    def test_single_row(self):
        u = UtilityFunction()
        got = u.batch([[100.0, 200.0, 300.0]], [[2.0, 3.0, 4.0]])
        assert got[0] == u((100.0, 200.0, 300.0), (2.0, 3.0, 4.0))

    def test_wrong_shapes_rejected(self):
        u = UtilityFunction()
        with pytest.raises(ConfigError):
            u.batch([[1.0, 2.0]], [[1.0, 2.0, 3.0]])
        with pytest.raises(ConfigError):
            u.batch([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])


class TestMaxReward:
    def test_formula(self):
        u = UtilityFunction(1.02)
        b = 1000.0
        expected = b * (1.02**-13 + 1.02**-7 + 1.02**-5)
        assert u.max_reward(b, (13, 7, 5)) == pytest.approx(expected)

    def test_max_reward_upper_bounds_attainable_utility(self):
        """At the optimum every stage moves exactly b; no feasible operating
        point with the optimal thread counts exceeds R_max."""
        u = UtilityFunction(1.02)
        b, optimal = 1000.0, (13, 7, 5)
        r_max = u.max_reward(b, optimal)
        assert u((b, b, b), optimal) == pytest.approx(r_max)
        assert u((b * 0.9, b, b), optimal) < r_max

    def test_k_controls_aggressiveness(self):
        """Larger k penalizes the same thread counts harder."""
        gentle, harsh = UtilityFunction(1.01), UtilityFunction(1.2)
        tputs, threads = (1000, 1000, 1000), (13, 7, 5)
        assert harsh(tputs, threads) < gentle(tputs, threads)
