"""PPO agent: memory, returns, update mechanics."""

import math

import numpy as np
import pytest

from repro.core.ppo import PPOAgent, PPOConfig, RolloutMemory, discounted_returns


def tiny_config(**overrides) -> PPOConfig:
    defaults = dict(hidden_dim=16, policy_blocks=1, value_blocks=1)
    defaults.update(overrides)
    return PPOConfig(**defaults)


class TestDiscountedReturns:
    def test_gamma_zero_is_identity(self):
        r = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(discounted_returns(r, 0.0), r)

    def test_gamma_one_is_suffix_sum(self):
        r = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(discounted_returns(r, 1.0), [6.0, 5.0, 3.0])

    def test_recursive_definition(self):
        r = np.array([1.0, 1.0, 1.0, 1.0])
        g = discounted_returns(r, 0.5)
        for t in range(3):
            assert g[t] == pytest.approx(r[t] + 0.5 * g[t + 1])


def _loop_returns(rewards, gamma):
    """The original Horner-loop oracle the vectorized path must match."""
    returns = np.empty(len(rewards), dtype=float)
    running = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        running = rewards[t] + gamma * running
        returns[t] = running
    return returns


class TestDiscountedReturnsVectorized:
    """The cumsum fast path is bit-identical to the loop, or falls back."""

    @pytest.mark.parametrize("gamma", [0.5, 0.25, 0.875, 1.0])
    @pytest.mark.parametrize("n", [1, 2, 5, 50, 400])
    def test_power_of_two_gammas_bit_identical(self, gamma, n):
        rewards = np.random.default_rng(hash((gamma, n)) % 2**32).uniform(
            -5.0, 5.0, n
        )
        np.testing.assert_array_equal(
            discounted_returns(rewards, gamma), _loop_returns(rewards, gamma)
        )

    @pytest.mark.parametrize("gamma", [0.9, 0.99, 0.3, 0.6180339887])
    def test_non_power_of_two_gammas_bit_identical(self, gamma):
        rewards = np.random.default_rng(13).uniform(-2.0, 2.0, 60)
        np.testing.assert_array_equal(
            discounted_returns(rewards, gamma), _loop_returns(rewards, gamma)
        )

    def test_extreme_magnitudes_bit_identical(self):
        # Near the float range edges the pre-scaled partials go subnormal
        # or overflow; the guards must route these through the loop.
        rewards = np.array([1e300, -1e300, 1e-310, 5.0, -1e308, 1e-320, 0.0])
        for gamma in (0.5, 0.25, 1.0, 0.9):
            np.testing.assert_array_equal(
                discounted_returns(rewards, gamma), _loop_returns(rewards, gamma)
            )

    def test_nan_and_inf_propagate_like_the_loop(self):
        rewards = np.array([1.0, np.nan, 2.0, np.inf, -3.0])
        got = discounted_returns(rewards, 0.5)
        want = _loop_returns(rewards, 0.5)
        np.testing.assert_array_equal(
            np.isnan(got), np.isnan(want)
        )
        mask = ~np.isnan(want)
        np.testing.assert_array_equal(got[mask], want[mask])

    def test_gamma_zero_and_empty(self):
        rewards = np.array([3.0, -1.0, 2.0])
        np.testing.assert_array_equal(discounted_returns(rewards, 0.0), rewards)
        assert discounted_returns(np.array([]), 0.5).size == 0


class TestRolloutMemory:
    def test_store_and_arrays(self):
        mem = RolloutMemory()
        for i in range(3):
            mem.store(np.full(8, i), np.full(3, i), -1.0 * i, float(i))
        mem.end_episode(gamma=0.5)
        states, actions, lps, returns = mem.arrays()
        assert states.shape == (3, 8)
        assert actions.shape == (3, 3)
        assert lps.shape == (3,)
        np.testing.assert_allclose(returns, discounted_returns(np.array([0.0, 1.0, 2.0]), 0.5))

    def test_multiple_episodes_independent_returns(self):
        mem = RolloutMemory()
        for _ in range(2):
            for r in (1.0, 1.0):
                mem.store(np.zeros(8), np.zeros(3), 0.0, r)
            mem.end_episode(gamma=1.0)
        _, _, _, returns = mem.arrays()
        # Episode boundary respected: each episode's first step has G=2.
        np.testing.assert_array_equal(returns, [2.0, 1.0, 2.0, 1.0])

    def test_arrays_without_end_episode_raises(self):
        mem = RolloutMemory()
        mem.store(np.zeros(8), np.zeros(3), 0.0, 1.0)
        with pytest.raises(RuntimeError):
            mem.arrays()

    def test_clear(self):
        mem = RolloutMemory()
        mem.store(np.zeros(8), np.zeros(3), 0.0, 1.0)
        mem.end_episode(0.5)
        mem.clear()
        assert len(mem) == 0
        assert mem.returns == []


class TestAgentActing:
    def test_act_returns_action_and_logprob(self):
        agent = PPOAgent(config=tiny_config(), rng=0)
        action, log_prob = agent.act(np.zeros(8))
        assert action.shape == (3,)
        assert isinstance(log_prob, float)

    def test_deterministic_act_is_mean(self):
        agent = PPOAgent(config=tiny_config(), rng=0)
        a1, _ = agent.act(np.zeros(8), deterministic=True)
        a2, _ = agent.act(np.zeros(8), deterministic=True)
        np.testing.assert_array_equal(a1, a2)

    def test_stochastic_act_varies(self):
        agent = PPOAgent(config=tiny_config(), rng=0)
        a1, _ = agent.act(np.zeros(8))
        a2, _ = agent.act(np.zeros(8))
        assert not np.array_equal(a1, a2)

    def test_value_of(self):
        agent = PPOAgent(config=tiny_config(), rng=0)
        assert isinstance(agent.value_of(np.zeros(8)), float)


class TestAgentUpdate:
    def fill_memory(self, agent, n_episodes=2, steps=5, seed=0):
        rng = np.random.default_rng(seed)
        for _ in range(n_episodes):
            for _ in range(steps):
                state = rng.standard_normal(8)
                action, log_prob = agent.act(state)
                agent.memory.store(state, action, log_prob, float(rng.random()))
            agent.memory.end_episode(agent.config.gamma)

    def test_update_returns_stats(self):
        agent = PPOAgent(config=tiny_config(), rng=0)
        self.fill_memory(agent)
        stats = agent.update()
        assert set(stats) >= {
            "loss", "actor_loss", "critic_loss", "entropy", "mean_ratio",
            "approx_kl", "clip_fraction",
        }
        assert math.isfinite(stats["approx_kl"])
        assert 0.0 <= stats["clip_fraction"] <= 1.0

    def test_update_changes_parameters(self):
        agent = PPOAgent(config=tiny_config(), rng=0)
        before = {k: v.copy() for k, v in agent.policy.state_dict().items()}
        self.fill_memory(agent)
        agent.update()
        changed = any(
            not np.array_equal(before[k], v) for k, v in agent.policy.state_dict().items()
        )
        assert changed

    def test_old_policy_synced_after_update(self):
        agent = PPOAgent(config=tiny_config(), rng=0)
        self.fill_memory(agent)
        agent.update()
        for (_, a), (_, b) in zip(
            agent.policy.named_parameters(), agent.policy_old.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_first_epoch_ratio_is_one(self):
        """Collected with the same policy that updates: the first-epoch ratio
        must be ≈1 (Algorithm 2's π/π_old at sync)."""
        agent = PPOAgent(config=tiny_config(update_epochs=1), rng=0)
        self.fill_memory(agent)
        stats = agent.update()
        assert stats["mean_ratio"] == pytest.approx(1.0, abs=1e-6)

    def test_critic_improves_on_repeated_data(self):
        agent = PPOAgent(config=tiny_config(update_epochs=1, learning_rate=1e-2), rng=0)
        rng = np.random.default_rng(0)
        states = rng.standard_normal((10, 8))
        losses = []
        for _ in range(30):
            agent.memory.clear()
            for s in states:
                a, lp = agent.act(s)
                agent.memory.store(s, a, lp, 1.0)
            agent.memory.end_episode(agent.config.gamma)
            losses.append(agent.update()["critic_loss"])
        assert losses[-1] < losses[0]

    def test_lr_progress_anneals(self):
        agent = PPOAgent(config=tiny_config(learning_rate=1e-3, final_learning_rate=1e-4), rng=0)
        agent.set_lr_progress(0.0)
        assert agent.optimizer.lr == pytest.approx(1e-3)
        agent.set_lr_progress(1.0)
        assert agent.optimizer.lr == pytest.approx(1e-4)
        agent.set_lr_progress(5.0)  # clamped
        assert agent.optimizer.lr == pytest.approx(1e-4)


class TestStateDict:
    def test_roundtrip(self):
        a = PPOAgent(config=tiny_config(), rng=0)
        b = PPOAgent(config=tiny_config(), rng=1)
        b.load_state_dict(a.state_dict())
        s = np.random.default_rng(2).standard_normal(8)
        np.testing.assert_allclose(
            a.act(s, deterministic=True)[0], b.act(s, deterministic=True)[0]
        )
