"""Production controller (§IV-F) and checkpointing."""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointMeta, load_checkpoint, save_checkpoint
from repro.core.networks import PolicyNetwork
from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.production import AutoMDTController
from repro.transfer.engine import Observation


def make_obs(threads=(5, 5, 5), throughputs=(500, 500, 500)):
    return Observation(
        threads=threads,
        throughputs=throughputs,
        sender_free=0.8e9,
        receiver_free=0.9e9,
        sender_capacity=1e9,
        receiver_capacity=1e9,
        elapsed=10.0,
        bytes_written_total=1e9,
    )


class TestAutoMDTController:
    def make(self, deterministic=False, seed=0):
        policy = PolicyNetwork(8, 3, hidden_dim=16, num_blocks=1, rng=seed)
        return AutoMDTController(
            policy,
            max_threads=30,
            throughput_scale=1000.0,
            deterministic=deterministic,
            rng=seed,
        )

    def test_propose_returns_valid_triple(self):
        ctrl = self.make()
        for _ in range(20):
            triple = ctrl.propose(make_obs())
            assert len(triple) == 3
            assert all(1 <= n <= 30 for n in triple)

    def test_deterministic_mode_stable(self):
        ctrl = self.make(deterministic=True)
        assert ctrl.propose(make_obs()) == ctrl.propose(make_obs())

    def test_sampling_mode_varies(self):
        ctrl = self.make(deterministic=False)
        proposals = {ctrl.propose(make_obs()) for _ in range(30)}
        assert len(proposals) > 1

    def test_state_construction_matches_env_convention(self):
        ctrl = self.make()
        state = ctrl._state_from_observation(make_obs((15, 30, 3), (500, 1000, 100)))
        np.testing.assert_allclose(state[:3], [0.5, 1.0, 0.1])
        np.testing.assert_allclose(state[3:6], [0.5, 1.0, 0.1])
        np.testing.assert_allclose(state[6:], [0.8, 0.9])

    def test_responds_to_observation(self):
        """Different observations may map to different proposals (policy is
        state-conditioned, not constant)."""
        ctrl = self.make(deterministic=True)
        a = ctrl.propose(make_obs((1, 1, 1), (10, 10, 10)))
        b = ctrl.propose(make_obs((30, 30, 30), (1000, 1000, 1000)))
        # Not required to differ for an untrained net, but the call path
        # must accept both extremes without error.
        assert len(a) == len(b) == 3

    def test_nan_throughputs_yield_finite_state(self):
        """Probe dropouts hand the controller NaN readings; the state must
        stay finite or the Gaussian head emits NaN thread counts."""
        ctrl = self.make(deterministic=True)
        nan = float("nan")
        state = ctrl._state_from_observation(make_obs(throughputs=(nan, nan, nan)))
        assert np.all(np.isfinite(state))
        np.testing.assert_allclose(state[3:6], [0.0, 0.0, 0.0])

    def test_degenerate_buffer_reports_yield_finite_state(self):
        nan = float("nan")
        obs = Observation(
            threads=(5, 5, 5),
            throughputs=(500, 500, 500),
            sender_free=nan,
            receiver_free=float("inf"),
            sender_capacity=0.0,
            receiver_capacity=nan,
            elapsed=10.0,
            bytes_written_total=1e9,
        )
        state = self.make()._state_from_observation(obs)
        assert np.all(np.isfinite(state))

    def test_propose_on_pathological_observation_returns_valid_triple(self):
        ctrl = self.make(deterministic=True)
        nan = float("nan")
        obs = Observation(
            threads=(5, 5, 5),
            throughputs=(nan, float("inf"), -1.0),
            sender_free=nan,
            receiver_free=nan,
            sender_capacity=0.0,
            receiver_capacity=0.0,
            elapsed=10.0,
            bytes_written_total=0.0,
        )
        triple = ctrl.propose(obs)
        assert all(isinstance(n, int) and 1 <= n <= 30 for n in triple)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        agent = PPOAgent(config=PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1), rng=0)
        meta = CheckpointMeta(
            max_threads=30, throughput_scale=1000.0, action_mode="normalized", utility_k=1.02
        )
        save_checkpoint(tmp_path / "ckpt", agent, meta)

        loaded, loaded_meta = load_checkpoint(tmp_path / "ckpt", rng=1)
        assert loaded_meta == meta
        s = np.random.default_rng(0).standard_normal(8)
        np.testing.assert_allclose(
            agent.act(s, deterministic=True)[0], loaded.act(s, deterministic=True)[0]
        )
        assert loaded.config.hidden_dim == 16

    def test_files_created(self, tmp_path):
        agent = PPOAgent(config=PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1), rng=0)
        meta = CheckpointMeta(30, 1000.0, "normalized", 1.02)
        save_checkpoint(tmp_path / "sub" / "ckpt", agent, meta)
        assert (tmp_path / "sub" / "ckpt.npz").exists()
        assert (tmp_path / "sub" / "ckpt.json").exists()


class TestAutoMDTFacade:
    def test_full_pipeline_small(self, tmp_path):
        """explore -> train (tiny budget) -> controller -> save/load."""
        from repro.core.agent import AutoMDT
        from repro.core.training import TrainingConfig
        from repro.emulator import Testbed, fig5_read_bottleneck

        pipeline = AutoMDT(
            ppo_config=PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1),
            training_config=TrainingConfig(max_episodes=12, stagnation_episodes=12),
            seed=0,
        )
        profile = pipeline.explore(Testbed(fig5_read_bottleneck(), rng=0), duration=30)
        assert profile.bottleneck > 0

        result = pipeline.train_offline()
        assert result.episodes_run == 12

        controller = pipeline.controller()
        triple = controller.propose(make_obs())
        assert all(1 <= n <= 30 for n in triple)

        pipeline.save(tmp_path / "automdt")
        fresh = AutoMDT(seed=1)
        fresh.load(tmp_path / "automdt")
        assert fresh.profile == profile
        ctrl = fresh.controller(deterministic=True)
        assert len(ctrl.propose(make_obs())) == 3

    def test_controller_before_training_raises(self):
        from repro.core.agent import AutoMDT
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError):
            AutoMDT().controller()

    def test_training_before_profile_raises(self):
        from repro.core.agent import AutoMDT
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError):
            AutoMDT().train_offline()
