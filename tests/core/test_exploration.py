"""The exploration/logging phase (§IV-A)."""

import pytest

from repro.core.exploration import ExplorationProfile, run_exploration
from repro.core.utility import UtilityFunction
from repro.emulator import Testbed, fig5_read_bottleneck


@pytest.fixture(scope="module")
def profile() -> ExplorationProfile:
    testbed = Testbed(fig5_read_bottleneck(), rng=0)
    return run_exploration(testbed, duration=120.0, rng=0)


class TestRunExploration:
    def test_bandwidth_estimates_close_to_truth(self, profile):
        # Every stage ceiling in the fig5 preset is 1 Gbps.
        for b in profile.bandwidth:
            assert 850.0 <= b <= 1050.0

    def test_tpt_estimates_close_to_truth(self, profile):
        for measured, true in zip(profile.tpt, (80.0, 160.0, 200.0)):
            assert measured == pytest.approx(true, rel=0.15)

    def test_optimal_threads_recovered(self, profile):
        # The paper's (13, 7, 5) — allow ±1 for probe noise.
        for n, expected in zip(profile.optimal_threads(), (13, 7, 5)):
            assert abs(n - expected) <= 1

    def test_bottleneck_is_min(self, profile):
        assert profile.bottleneck == min(profile.bandwidth)

    def test_sample_count(self, profile):
        assert profile.samples == 120

    def test_deterministic(self):
        a = run_exploration(Testbed(fig5_read_bottleneck(), rng=0), duration=30, rng=7)
        b = run_exploration(Testbed(fig5_read_bottleneck(), rng=0), duration=30, rng=7)
        assert a == b

    def test_rejects_zero_duration(self):
        with pytest.raises(Exception):
            run_exploration(Testbed(fig5_read_bottleneck(), rng=0), duration=0.0)


class TestProfile:
    def test_max_reward(self, profile):
        u = UtilityFunction()
        r_max = profile.max_reward(u)
        assert r_max == pytest.approx(
            u.max_reward(profile.bottleneck, profile.optimal_threads())
        )

    def test_roundtrip(self, profile):
        assert ExplorationProfile.from_dict(profile.to_dict()) == profile

    def test_optimal_clamped_to_max_threads(self):
        p = ExplorationProfile(
            bandwidth=(1000, 1000, 1000),
            tpt=(1.0, 100.0, 100.0),
            sender_buffer_capacity=1e9,
            receiver_buffer_capacity=1e9,
            max_threads=30,
            samples=10,
        )
        assert p.optimal_threads()[0] == 30
