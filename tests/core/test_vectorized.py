"""Vectorized fluid simulator and batched training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.training import TrainingConfig
from repro.core.vectorized import VectorizedSimulatorEnv, train_vectorized
from repro.simulator import IONetworkSimulator, SimulatorConfig
from repro.simulator.fluid import FluidBatchSimulator
from repro.utils.errors import SimulationError


def sim_config(**overrides) -> SimulatorConfig:
    defaults = dict(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        max_threads=30,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestFluidBatchSimulator:
    def test_shapes(self):
        sim = FluidBatchSimulator(sim_config(), batch_size=5)
        out = sim.step_second(np.tile([13, 7, 5], (5, 1)).astype(float))
        assert out["throughputs"].shape == (5, 3)
        assert out["sender_usage"].shape == (5,)

    def test_optimal_triple_hits_bottleneck(self):
        sim = FluidBatchSimulator(sim_config(), batch_size=3)
        out = None
        for _ in range(5):
            out = sim.step_second(np.tile([13, 7, 5], (3, 1)).astype(float))
        np.testing.assert_allclose(out["throughputs"], 1000.0, rtol=0.05)

    def test_environments_independent(self):
        sim = FluidBatchSimulator(sim_config(), batch_size=2)
        threads = np.array([[30.0, 2.0, 2.0], [13.0, 7.0, 5.0]])
        for _ in range(20):
            out = sim.step_second(threads)
        # Env 0 over-reads and fills its buffer; env 1 stays drained.
        assert out["sender_usage"][0] > out["sender_usage"][1] * 5

    def test_agreement_with_event_simulator(self):
        """Steady-state throughput matches the Algorithm-1 event simulator."""
        cfg = sim_config()
        fluid = FluidBatchSimulator(cfg, batch_size=1)
        event = IONetworkSimulator(cfg)
        for threads in [(13, 7, 5), (5, 14, 6), (30, 2, 2)]:
            fluid.reset()
            event.reset()
            for _ in range(5):
                f = fluid.step_second(np.array([threads], dtype=float))
                e = event.step_second(threads)
            np.testing.assert_allclose(
                f["throughputs"][0], e.throughputs, rtol=0.1, atol=30.0
            )

    def test_thread_clamping(self):
        sim = FluidBatchSimulator(sim_config(), batch_size=1)
        out = sim.step_second(np.array([[0.0, 99.0, 5.4]]))
        np.testing.assert_array_equal(out["threads"][0], [1, 30, 5])

    def test_bad_shapes_rejected(self):
        sim = FluidBatchSimulator(sim_config(), batch_size=2)
        with pytest.raises(SimulationError):
            sim.step_second(np.zeros((3, 3)))

    def test_masked_reset(self):
        sim = FluidBatchSimulator(sim_config(), batch_size=3)
        sim.step_second(np.tile([30, 1, 1], (3, 1)).astype(float))
        filled = sim.sender_usage.copy()
        sim.reset(mask=np.array([True, False, False]))
        assert sim.sender_usage[0] == 0.0
        assert sim.sender_usage[1] == filled[1]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=30))
    def test_buffers_bounded_property(self, a, b, c):
        cfg = sim_config()
        sim = FluidBatchSimulator(cfg, batch_size=1)
        for _ in range(10):
            sim.step_second(np.array([[a, b, c]], dtype=float))
        assert 0.0 <= sim.sender_usage[0] <= cfg.sender_buffer_capacity
        assert 0.0 <= sim.receiver_usage[0] <= cfg.receiver_buffer_capacity


class TestVectorizedEnv:
    def test_reset_shapes(self):
        env = VectorizedSimulatorEnv(sim_config(), batch_size=4, rng=0)
        assert env.reset().shape == (4, 8)

    def test_step(self):
        env = VectorizedSimulatorEnv(sim_config(), batch_size=4, episode_steps=3, rng=0)
        env.reset()
        actions = np.full((4, 3), 0.4)
        dones = []
        for _ in range(3):
            states, rewards, done, _ = env.step(actions)
            dones.append(done)
        assert states.shape == (4, 8)
        assert rewards.shape == (4,)
        assert dones == [False, False, True]

    def test_reward_matches_scalar_env_convention(self):
        """Vectorized rewards are normalized utilities like SimulatorEnv's."""
        env = VectorizedSimulatorEnv(
            sim_config(), batch_size=2, randomize_initial_buffers=False, rng=0
        )
        env.reset()
        env.simulator.reset()
        optimal_action = (np.array([13, 7, 5]) - 1) / 29.0
        rewards = None
        for _ in range(3):  # allow the pipeline-fill transient to pass
            _, rewards, _, _ = env.step(np.tile(optimal_action, (2, 1)))
        np.testing.assert_allclose(rewards, 1.0, atol=0.1)


class TestTrainVectorized:
    def test_short_run_improves(self):
        env = VectorizedSimulatorEnv(sim_config(), batch_size=4, rng=0)
        agent = PPOAgent(
            config=PPOConfig(hidden_dim=32, policy_blocks=1, value_blocks=1), rng=0
        )
        result = train_vectorized(
            agent, env, TrainingConfig(max_episodes=160, stagnation_episodes=160)
        )
        assert result.episodes_run >= 160
        first = result.episode_rewards[:40].mean()
        last = result.episode_rewards[-40:].mean()
        assert last > first - 0.5  # never collapses; typically improves

    def test_result_bookkeeping(self):
        env = VectorizedSimulatorEnv(sim_config(), batch_size=4, rng=0)
        agent = PPOAgent(
            config=PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1), rng=0
        )
        result = train_vectorized(
            agent, env, TrainingConfig(max_episodes=20, stagnation_episodes=20)
        )
        assert len(result.episode_rewards) == result.episodes_run
        assert result.best_reward == pytest.approx(result.episode_rewards.max())
        agent.load_state_dict(result.best_state)
