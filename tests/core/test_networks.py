"""Policy and value networks (§IV-D3/4)."""

import numpy as np

from repro.core.networks import PolicyNetwork, ValueNetwork
from repro.nn.distributions import DiagonalGaussian


class TestPolicyNetwork:
    def test_forward_single_state(self):
        net = PolicyNetwork(8, 3, hidden_dim=32, num_blocks=1, rng=0)
        dist = net(np.zeros(8))
        assert isinstance(dist, DiagonalGaussian)
        assert dist.mean.shape == (3,)

    def test_forward_batch(self):
        net = PolicyNetwork(8, 3, hidden_dim=32, num_blocks=1, rng=0)
        dist = net(np.zeros((5, 8)))
        assert dist.mean.shape == (5, 3)

    def test_mean_bounded_by_tanh_squash(self):
        net = PolicyNetwork(8, 3, hidden_dim=32, num_blocks=1, rng=0,
                            mean_center=0.5, mean_span=0.75)
        rng = np.random.default_rng(0)
        for _ in range(20):
            mean = net(rng.standard_normal(8) * 100).mean.data
            assert np.all(mean >= -0.25 - 1e-9)
            assert np.all(mean <= 1.25 + 1e-9)

    def test_log_std_clamped(self):
        net = PolicyNetwork(8, 3, hidden_dim=32, num_blocks=1, rng=0,
                            log_std_range=(-2.0, 0.0))
        net.log_std.data[...] = 10.0
        dist = net(np.zeros(8))
        np.testing.assert_allclose(dist.log_std.data, 0.0)

    def test_paper_architecture_dimensions(self):
        """Default net matches §IV-D3: 256-dim embedding, 3 residual blocks."""
        net = PolicyNetwork(rng=0)
        assert net.embed.out_features == 256
        assert len(net.blocks) == 3
        # Each policy residual block uses LayerNorm + ReLU.
        assert net.blocks[0].norm1 is not None
        assert net.blocks[0].activation == "relu"

    def test_untrained_mean_near_center(self):
        net = PolicyNetwork(8, 3, hidden_dim=32, num_blocks=1, rng=0)
        mean = net(np.zeros(8)).mean.data
        np.testing.assert_allclose(mean, 0.5, atol=0.1)

    def test_gradients_reach_all_parameters(self):
        net = PolicyNetwork(8, 3, hidden_dim=16, num_blocks=1, rng=0)
        dist = net(np.random.default_rng(0).standard_normal((4, 8)))
        dist.log_prob(np.full((4, 3), 0.5)).sum().backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert missing == []


class TestValueNetwork:
    def test_scalar_for_single_state(self):
        net = ValueNetwork(8, hidden_dim=32, num_blocks=1, rng=0)
        out = net(np.zeros(8))
        assert out.size == 1

    def test_vector_for_batch(self):
        net = ValueNetwork(8, hidden_dim=32, num_blocks=1, rng=0)
        assert net(np.zeros((7, 8))).shape == (7,)

    def test_paper_architecture(self):
        """§IV-D4: 256-dim, 2 Tanh residual blocks without LayerNorm."""
        net = ValueNetwork(rng=0)
        assert net.embed.out_features == 256
        blocks = [net.trunk[i] for i in range(1, len(net.trunk))]
        assert len(blocks) == 2
        assert all(b.activation == "tanh" for b in blocks)
        assert all(b.norm1 is None for b in blocks)

    def test_trainable_to_fit_constant(self):
        from repro.nn import Adam

        net = ValueNetwork(4, hidden_dim=16, num_blocks=1, rng=0)
        opt = Adam(net.parameters(), lr=1e-2)
        x = np.random.default_rng(0).standard_normal((16, 4))
        from repro.autograd.tensor import Tensor

        target = Tensor(np.full(16, 5.0))
        for _ in range(200):
            net.zero_grad()
            out = net(x)
            loss = ((out - target) * (out - target)).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1
