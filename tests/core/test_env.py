"""RL environments: state assembly, action mapping, reward normalization."""

import numpy as np
import pytest

from repro.core.env import SimulatorEnv, TestbedEnv
from repro.core.exploration import ExplorationProfile
from repro.core.utility import UtilityFunction
from repro.emulator import Testbed, fig5_read_bottleneck
from repro.simulator import SimulatorConfig, sample_scenario
from repro.utils.errors import ConfigError


def sim_config(**overrides) -> SimulatorConfig:
    defaults = dict(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        max_threads=30,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestActionMapping:
    def test_normalized_mode_endpoints(self):
        env = SimulatorEnv(sim_config(), rng=0)
        assert env.action_to_threads([0.0, 0.0, 0.0]) == (1, 1, 1)
        assert env.action_to_threads([1.0, 1.0, 1.0]) == (30, 30, 30)

    def test_normalized_mode_clamps(self):
        env = SimulatorEnv(sim_config(), rng=0)
        assert env.action_to_threads([-5.0, 2.0, 0.5]) == (1, 30, 16)

    def test_direct_mode(self):
        env = SimulatorEnv(sim_config(), action_mode="direct", rng=0)
        assert env.action_to_threads([13.4, 7.0, 98.0]) == (13, 7, 30)

    def test_roundtrip(self):
        env = SimulatorEnv(sim_config(), rng=0)
        for triple in [(1, 1, 1), (13, 7, 5), (30, 30, 30)]:
            assert env.action_to_threads(env.threads_to_action(triple)) == triple

    def test_invalid_action_shape(self):
        env = SimulatorEnv(sim_config(), rng=0)
        with pytest.raises(ConfigError):
            env.action_to_threads([1.0, 2.0])

    def test_invalid_action_mode(self):
        with pytest.raises(ConfigError):
            SimulatorEnv(sim_config(), action_mode="polar", rng=0)


class TestState:
    def test_state_shape_and_range(self):
        env = SimulatorEnv(sim_config(), rng=0)
        state = env.reset()
        assert state.shape == (8,)
        assert np.all(state >= -0.01)
        assert np.all(state[:3] <= 1.0)  # normalized thread counts
        assert np.all(state[6:] <= 1.0)  # buffer fractions

    def test_state_components(self):
        env = SimulatorEnv(sim_config(), randomize_initial_buffers=False, rng=0)
        state = env.make_state((15, 30, 3), (500, 1000, 100), 0.5e9, 1e9)
        np.testing.assert_allclose(state[:3], [0.5, 1.0, 0.1])
        np.testing.assert_allclose(state[3:6], [0.5, 1.0, 0.1])

    def test_reset_randomizes_threads(self):
        env = SimulatorEnv(sim_config(), rng=0)
        states = {tuple(np.round(env.reset()[:3] * 30)) for _ in range(10)}
        assert len(states) > 3


class TestStepReward:
    def test_reward_normalized_to_unit_scale(self):
        env = SimulatorEnv(sim_config(), randomize_initial_buffers=False, rng=0)
        env.reset()
        _, reward, _, info = env.step(env.threads_to_action((13, 7, 5)))
        assert 0.8 <= reward <= 1.05  # optimal action ≈ 1.0 after warm-up

    def test_raw_reward_option(self):
        env = SimulatorEnv(sim_config(), normalize_reward=False, rng=0)
        env.reset()
        _, reward, _, info = env.step(env.threads_to_action((13, 7, 5)))
        assert reward == pytest.approx(info["utility"])
        assert reward > 100  # Mbps scale

    def test_done_after_episode_steps(self):
        env = SimulatorEnv(sim_config(), episode_steps=3, rng=0)
        env.reset()
        dones = [env.step([0.5, 0.5, 0.5])[2] for _ in range(3)]
        assert dones == [False, False, True]

    def test_info_contents(self):
        env = SimulatorEnv(sim_config(), rng=0)
        env.reset()
        _, _, _, info = env.step([0.5, 0.5, 0.5])
        assert set(info) >= {"threads", "throughputs", "utility", "sender_usage"}

    def test_suboptimal_reward_lower(self):
        env = SimulatorEnv(sim_config(), randomize_initial_buffers=False, rng=0)
        env.reset()
        _, good, _, _ = env.step(env.threads_to_action((13, 7, 5)))
        env.reset()
        env.simulator.reset()
        _, bad, _, _ = env.step(env.threads_to_action((30, 30, 30)))
        assert good > bad


class TestScenarioSampling:
    def test_sampler_called_on_reset(self):
        env = SimulatorEnv(
            sim_config(),
            scenario_sampler=lambda rng: sample_scenario(rng, max_threads=30),
            rng=0,
        )
        env.reset()
        first = env.config
        env.reset()
        assert env.config != first

    def test_max_reward_tracks_scenario(self):
        env = SimulatorEnv(
            sim_config(),
            scenario_sampler=lambda rng: sample_scenario(rng, max_threads=30),
            rng=0,
        )
        env.reset()
        u = UtilityFunction()
        assert env.max_reward == pytest.approx(
            u.max_reward(env.config.bottleneck, env.config.optimal_threads())
        )


class TestFromProfile:
    def test_build(self):
        profile = ExplorationProfile(
            bandwidth=(1000, 900, 950),
            tpt=(80, 160, 200),
            sender_buffer_capacity=1e9,
            receiver_buffer_capacity=1e9,
            max_threads=25,
            samples=60,
        )
        env = SimulatorEnv.from_profile(profile, rng=0)
        assert env.max_threads == 25
        assert env.throughput_scale == 900


class TestTestbedEnv:
    def test_runs_episode(self):
        env = TestbedEnv(Testbed(fig5_read_bottleneck(), rng=0), episode_steps=4, rng=0)
        state = env.reset()
        assert state.shape == (8,)
        total = 0.0
        for _ in range(4):
            state, reward, done, info = env.step([0.4, 0.2, 0.15])
            total += reward
        assert done
        assert total > 0

    def test_reward_near_one_at_optimum(self):
        env = TestbedEnv(Testbed(fig5_read_bottleneck(), rng=0), rng=0)
        env.reset()
        reward = 0.0
        for _ in range(5):
            _, reward, _, _ = env.step(env.threads_to_action((13, 7, 5)))
        assert reward == pytest.approx(1.0, abs=0.12)
