"""Batched population training must be bit-identical to the scalar path.

``train_population(batched=True)`` fuses every member's simulator into one
:class:`BatchedEnv`, but derives the same per-member seed streams and
replays the same act/store/update cadence as ``_train_member``.  These
tests pin that contract: every reward, checkpoint metric and evaluation
score must match ``workers=1`` exactly — ``==`` on floats, no tolerance.
"""

import numpy as np

from repro.core.batched_env import BatchedEnv
from repro.core.env import SimulatorEnv
from repro.core.population import train_population
from repro.core.ppo import PPOConfig
from repro.core.training import TrainingConfig
from repro.parallel import derive_seed
from repro.simulator.config import SimulatorConfig


def _variant(scale: float) -> SimulatorConfig:
    return SimulatorConfig(
        tpt_read=80.0 * scale,
        tpt_network=160.0,
        tpt_write=200.0,
        max_threads=8,
        label=f"variant-{scale:g}",
    )


def test_batched_env_columns_match_scalar_envs():
    """Each BatchedEnv column replays SimulatorEnv's exact RNG + state math."""
    configs = [_variant(1.0), _variant(0.8), _variant(1.3)]
    seeds = [101, 202, 303]
    scalars = [
        SimulatorEnv(c, rng=np.random.default_rng(s))
        for c, s in zip(configs, seeds)
    ]
    batched = BatchedEnv(configs, rngs=[np.random.default_rng(s) for s in seeds])
    rng = np.random.default_rng(7)
    for _episode in range(3):
        states = batched.reset_all()
        for i, env in enumerate(scalars):
            assert np.array_equal(states[i], env.reset())
        for _step in range(batched.episode_steps):
            actions = rng.uniform(0.0, 1.0, (len(configs), 3))
            states, rewards, done, _info = batched.step_all(actions)
            for i, env in enumerate(scalars):
                want_state, want_reward, want_done, _ = env.step(actions[i])
                assert np.array_equal(states[i], want_state), f"column {i}"
                assert rewards[i] == want_reward
                assert done == want_done


def test_batched_env_masked_reset_skips_finished_columns():
    """Unselected columns draw nothing: their RNG streams stay untouched."""
    configs = [_variant(1.0), _variant(1.0)]
    batched = BatchedEnv(configs, rngs=[5, 6])
    batched.reset_all()
    # Column 1 "finishes": only column 0 resets; column 1's stream must be
    # exactly where a scalar env's stream would be after one reset.
    batched.reset_all(mask=np.array([True, False]))
    probe = SimulatorEnv(configs[1], rng=6)
    probe.reset()
    assert batched.rngs[1].integers(0, 1 << 30) == probe.rng.integers(0, 1 << 30)


def test_population_batched_matches_serial():
    """Full pipeline: rewards, checkpoints, eval scores, winner — all equal."""
    variants = [_variant(1.0), _variant(0.7), _variant(1.2)]
    training = TrainingConfig(
        max_episodes=6, steps_per_episode=5, episodes_per_update=2,
        stagnation_episodes=2, convergence_threshold=0.5,
    )
    ppo = PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1, update_epochs=2)
    kwargs = dict(
        root_seed=42, training_config=training, ppo_config=ppo, eval_episodes=2
    )
    serial = train_population(variants, workers=1, **kwargs)
    batched = train_population(variants, batched=True, **kwargs)

    assert batched.best_index == serial.best_index
    assert batched.eval_rewards() == serial.eval_rewards()
    for got, want in zip(batched.members, serial.members):
        assert got.index == want.index
        assert got.seed == want.seed == derive_seed(42, want.index)
        assert got.eval_reward == want.eval_reward
        t_got, t_want = got.training, want.training
        assert np.array_equal(t_got.episode_rewards, t_want.episode_rewards)
        assert t_got.best_reward == t_want.best_reward
        assert t_got.best_episode == t_want.best_episode
        assert t_got.converged == t_want.converged
        assert t_got.convergence_episode == t_want.convergence_episode
        assert t_got.episodes_run == t_want.episodes_run
        assert t_got.total_steps == t_want.total_steps
        for key in ("policy", "value"):
            for k, a in t_want.best_state[key].items():
                assert np.array_equal(t_got.best_state[key][k], a), (key, k)


def test_population_batched_winner_fingerprint_second_config():
    """A second profile (more members, longer episodes, 4 epochs — the
    stacked engine's default epoch count) picks the same winner with a
    bit-identical checkpoint."""
    variants = [_variant(s) for s in (1.0, 0.6, 0.9, 1.4)]
    training = TrainingConfig(
        max_episodes=4, steps_per_episode=8, episodes_per_update=1,
        stagnation_episodes=3, convergence_threshold=0.9,
    )
    ppo = PPOConfig(hidden_dim=24, policy_blocks=2, value_blocks=2)
    kwargs = dict(
        root_seed=7, training_config=training, ppo_config=ppo, eval_episodes=3
    )
    serial = train_population(variants, workers=1, **kwargs)
    batched = train_population(variants, batched=True, **kwargs)

    assert batched.best_index == serial.best_index
    assert batched.eval_rewards() == serial.eval_rewards()
    for key in ("policy", "value"):
        want_state = serial.best.training.best_state[key]
        got_state = batched.best.training.best_state[key]
        for k, a in want_state.items():
            assert np.array_equal(got_state[k], a), (key, k)
