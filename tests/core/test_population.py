"""Population training: parallel bit-identical to serial, best-by-eval."""

import numpy as np
import pytest

from repro.core.population import train_population
from repro.core.ppo import PPOConfig
from repro.core.training import TrainingConfig
from repro.parallel import derive_seed
from repro.simulator import SimulatorConfig


def _variants():
    """Three scenario variants differing only in network throttle."""
    return [
        SimulatorConfig(
            tpt_read=80, tpt_network=tpt_n, tpt_write=200,
            bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
            max_threads=10,
        )
        for tpt_n in (120, 160, 200)
    ]


def _run(workers):
    return train_population(
        _variants(),
        root_seed=3,
        training_config=TrainingConfig(max_episodes=24, stagnation_episodes=24),
        ppo_config=PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1),
        eval_episodes=2,
        workers=workers,
    )


class TestPopulation:
    def test_parallel_bit_identical_to_serial(self):
        serial = _run(workers=1)
        parallel = _run(workers=2)
        assert serial.eval_rewards() == parallel.eval_rewards()
        assert serial.best_index == parallel.best_index
        for a, b in zip(serial.members, parallel.members):
            assert a.seed == b.seed
            assert a.training.total_steps == b.training.total_steps
            np.testing.assert_array_equal(
                a.training.episode_rewards, b.training.episode_rewards
            )

    def test_member_seeds_derived_from_root(self):
        result = _run(workers=1)
        assert [m.seed for m in result.members] == [
            derive_seed(3, i) for i in range(3)
        ]

    def test_best_is_eval_argmax(self):
        result = _run(workers=1)
        rewards = result.eval_rewards()
        assert result.best_index == int(np.argmax(rewards))
        assert result.best.eval_reward == max(rewards)
        assert result.best is result.members[result.best_index]

    def test_empty_variants_rejected(self):
        with pytest.raises(ValueError):
            train_population([])
