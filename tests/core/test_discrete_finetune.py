"""Discrete-action variant (Fig. 4) and online fine-tuning (§V-C)."""

import numpy as np

from repro.core.discrete import DiscreteActionAdapter, DiscretePPOAgent, DiscretePolicyNetwork
from repro.core.env import SimulatorEnv, TestbedEnv
from repro.core.finetune import evaluate_policy, finetune_online
from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.training import TrainingConfig, train
from repro.emulator import Testbed, fig5_read_bottleneck
from repro.simulator import SimulatorConfig


def sim_env(seed=0, **kwargs):
    return SimulatorEnv(
        SimulatorConfig(
            tpt_read=80, tpt_network=160, tpt_write=200,
            bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        ),
        rng=seed,
        **kwargs,
    )


def tiny_ppo(**kw):
    return PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1, **kw)


class TestDiscretePolicyNetwork:
    def test_three_heads(self):
        net = DiscretePolicyNetwork(8, max_threads=30, hidden_dim=16, num_blocks=1, rng=0)
        dists = net(np.zeros(8))
        assert len(dists) == 3
        for d in dists:
            assert d.logits.shape == (30,)

    def test_batched(self):
        net = DiscretePolicyNetwork(8, max_threads=10, hidden_dim=16, num_blocks=1, rng=0)
        dists = net(np.zeros((4, 8)))
        assert dists[0].logits.shape == (4, 10)


class TestDiscreteAgent:
    def test_act_returns_indices(self):
        agent = DiscretePPOAgent(8, max_threads=30, config=tiny_ppo(), rng=0)
        idx, lp = agent.act(np.zeros(8))
        assert idx.shape == (3,)
        assert all(0 <= i < 30 for i in idx)
        assert isinstance(lp, float)

    def test_update_runs(self):
        agent = DiscretePPOAgent(8, max_threads=30, config=tiny_ppo(), rng=0)
        rng = np.random.default_rng(0)
        for _ in range(2):
            for _ in range(5):
                s = rng.standard_normal(8)
                a, lp = agent.act(s)
                agent.memory.store(s, a.astype(float), lp, float(rng.random()))
            agent.memory.end_episode(agent.config.gamma)
        stats = agent.update()
        assert "loss" in stats

    def test_trains_via_generic_loop(self):
        env = DiscreteActionAdapter(sim_env())
        agent = DiscretePPOAgent(8, max_threads=30, config=tiny_ppo(), rng=0)
        result = train(agent, env, TrainingConfig(max_episodes=20, stagnation_episodes=20))
        assert result.episodes_run == 20
        assert np.isfinite(result.episode_rewards).all()

    def test_state_dict_roundtrip(self):
        a = DiscretePPOAgent(8, max_threads=10, config=tiny_ppo(), rng=0)
        b = DiscretePPOAgent(8, max_threads=10, config=tiny_ppo(), rng=1)
        b.load_state_dict(a.state_dict())
        s = np.zeros(8)
        np.testing.assert_array_equal(
            a.act(s, deterministic=True)[0], b.act(s, deterministic=True)[0]
        )


class TestDiscreteAdapter:
    def test_index_to_threads_shift(self):
        env = sim_env(randomize_initial_buffers=False)
        adapter = DiscreteActionAdapter(env)
        adapter.reset()
        _, _, _, info = adapter.step(np.array([12, 6, 4]))  # 0-based indices
        assert info["threads"] == (13, 7, 5)

    def test_action_mode_restored(self):
        env = sim_env()
        adapter = DiscreteActionAdapter(env)
        adapter.reset()
        adapter.step(np.array([0, 0, 0]))
        assert env.action_mode == "normalized"


class TestFinetune:
    def make_env(self, seed=0):
        return TestbedEnv(Testbed(fig5_read_bottleneck(), rng=seed), episode_steps=5, rng=seed)

    def test_evaluate_policy(self):
        agent = PPOAgent(config=tiny_ppo(), rng=0)
        reward, concurrency = evaluate_policy(agent, self.make_env(), episodes=2)
        assert np.isfinite(reward)
        assert concurrency >= 3.0  # at least one thread per stage

    def test_finetune_comparison_fields(self):
        agent = PPOAgent(config=tiny_ppo(), rng=0)
        comparison = finetune_online(agent, self.make_env(), episodes=6, eval_episodes=2)
        assert comparison.training.episodes_run == 6
        assert np.isfinite(comparison.concurrency_reduction)
        assert np.isfinite(comparison.reward_change)

    def test_finetune_never_early_stops(self):
        agent = PPOAgent(config=tiny_ppo(), rng=0)
        comparison = finetune_online(agent, self.make_env(), episodes=9, eval_episodes=1)
        assert comparison.training.episodes_run == 9
