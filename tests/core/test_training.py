"""Algorithm 2 training loop: convergence bookkeeping, best-model tracking."""

import numpy as np
import pytest

from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.training import TrainingConfig, TrainingResult, train
from repro.utils.errors import ConfigError


class BanditEnv:
    """Minimal 1-step-quality env: reward = 1 - |action - target| (clipped).

    Converges in very few episodes, which keeps these tests fast while still
    exercising the full loop (reset/step/done, memory, update, convergence).
    """

    state_dim = 8
    action_dim = 3

    def __init__(self, target=(0.4, 0.2, 0.1), steps=5):
        self.target = np.asarray(target)
        self.steps = steps
        self._count = 0

    def reset(self):
        self._count = 0
        return np.zeros(8)

    def step(self, action):
        err = np.abs(np.asarray(action).reshape(-1) - self.target).mean()
        reward = float(np.clip(1.0 - err, 0.0, 1.0))
        self._count += 1
        return np.zeros(8), reward, self._count >= self.steps, {}


def tiny_agent(seed=0, **kw):
    return PPOAgent(config=PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1, **kw),
                    rng=seed)


class TestTrainingLoop:
    def test_improves_reward(self):
        agent = tiny_agent()
        result = train(
            agent,
            BanditEnv(),
            TrainingConfig(max_episodes=300, steps_per_episode=5, stagnation_episodes=300),
            max_episode_reward=5.0,
        )
        first = result.episode_rewards[:30].mean()
        last = result.episode_rewards[-30:].mean()
        assert last > first

    def test_result_fields(self):
        result = train(
            tiny_agent(),
            BanditEnv(),
            TrainingConfig(max_episodes=50, steps_per_episode=5, stagnation_episodes=50),
            max_episode_reward=5.0,
        )
        assert isinstance(result, TrainingResult)
        assert result.episodes_run == 50
        assert len(result.episode_rewards) == 50
        assert result.best_episode >= 0
        assert result.wall_seconds > 0
        assert result.steps_per_episode == 5

    def test_best_state_is_kept(self):
        agent = tiny_agent()
        result = train(
            agent,
            BanditEnv(),
            TrainingConfig(max_episodes=60, steps_per_episode=5, stagnation_episodes=60),
            max_episode_reward=5.0,
        )
        assert result.best_reward == pytest.approx(result.episode_rewards.max())
        # best_state must load cleanly.
        agent.load_state_dict(result.best_state)

    def test_early_stop_on_stagnation_after_convergence(self):
        """Once the target is hit, `stagnation_episodes` without improvement
        ends training before max_episodes."""
        agent = tiny_agent()
        result = train(
            agent,
            BanditEnv(target=(0.5, 0.5, 0.5)),
            TrainingConfig(
                max_episodes=5000,
                steps_per_episode=5,
                convergence_threshold=0.1,  # trivially reachable
                stagnation_episodes=20,
            ),
            max_episode_reward=5.0,
        )
        assert result.converged
        assert result.episodes_run < 5000

    def test_convergence_episode_recorded(self):
        result = train(
            tiny_agent(),
            BanditEnv(),
            TrainingConfig(
                max_episodes=200, steps_per_episode=5,
                convergence_threshold=0.05, stagnation_episodes=500,
            ),
            max_episode_reward=5.0,
        )
        assert result.convergence_episode is not None
        assert result.convergence_episode <= result.best_episode or result.converged

    def test_simulated_and_online_estimates(self):
        result = train(
            tiny_agent(),
            BanditEnv(),
            TrainingConfig(max_episodes=10, steps_per_episode=5, stagnation_episodes=10),
            max_episode_reward=5.0,
        )
        assert result.simulated_seconds == 50.0
        assert result.online_training_estimate(3.0) == 150.0

    def test_simulated_seconds_counts_actual_steps_on_early_done(self):
        """Episodes that end early must not be billed the full budget."""
        result = train(
            tiny_agent(),
            BanditEnv(steps=3),  # done after 3 steps, budget allows 10
            TrainingConfig(max_episodes=10, steps_per_episode=10, stagnation_episodes=10),
            max_episode_reward=10.0,
        )
        assert result.total_steps == result.episodes_run * 3
        assert result.simulated_seconds == float(result.total_steps)
        assert result.online_training_estimate(2.0) == 2.0 * result.total_steps
        # The naive episodes × budget estimate would have overcounted:
        assert result.simulated_seconds < result.episodes_run * 10.0

    def test_progress_callback(self):
        calls = []
        train(
            tiny_agent(),
            BanditEnv(),
            TrainingConfig(max_episodes=20, steps_per_episode=5,
                           stagnation_episodes=20, log_every=5),
            max_episode_reward=5.0,
            progress=lambda ep, r, best: calls.append(ep),
        )
        assert calls == [0, 5, 10, 15]

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            TrainingConfig(max_episodes=0)
        with pytest.raises(ConfigError):
            TrainingConfig(convergence_threshold=2.0)


class TestSimulatorIntegration:
    def test_short_training_on_simulator_env(self):
        """End-to-end smoke: a short run on the real training env must
        produce sane rewards and leave the agent deployable."""
        from repro.core.env import SimulatorEnv
        from repro.simulator import SimulatorConfig

        env = SimulatorEnv(
            SimulatorConfig(
                tpt_read=80, tpt_network=160, tpt_write=200,
                bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
            ),
            rng=0,
        )
        agent = tiny_agent()
        result = train(
            agent, env, TrainingConfig(max_episodes=40, stagnation_episodes=40)
        )
        assert 0.0 < result.best_reward <= result.max_episode_reward * 1.01
        action, _ = agent.act(env.reset(), deterministic=True)
        threads = env.action_to_threads(action)
        assert all(1 <= n <= 30 for n in threads)
