"""ParallelMap: ordering, isolation, timeouts, retries, determinism."""

import os
import time

import pytest

from repro.parallel import (
    ParallelMap,
    ParallelMapError,
    available_workers,
    derive_seed,
    parallel_map,
)


def _double(x):
    return 2 * x


def _echo_seeded(item, seed):
    return (item, seed)


def _crash_on_boom(x):
    if x == "boom":
        os._exit(13)  # simulate a segfault/OOM kill: no exception, no cleanup
    return x


def _raise_on_odd(x):
    if x % 2:
        raise ValueError(f"odd {x}")
    return x


def _sleep_if_slow(x):
    if x == "slow":
        time.sleep(30.0)
    return x


def _pid_of(_item):
    return os.getpid()


class TestBasics:
    def test_available_workers_positive(self):
        assert available_workers() >= 1

    def test_empty_items(self):
        assert ParallelMap(_double, workers=2).map([]) == []

    def test_order_preserved(self):
        outcomes = ParallelMap(_double, workers=3).map(list(range(20)))
        assert [o.index for o in outcomes] == list(range(20))
        assert [o.value for o in outcomes] == [2 * i for i in range(20)]
        assert all(o.ok for o in outcomes)

    def test_chunked_dispatch_preserves_order(self):
        values = ParallelMap(_double, workers=2, chunk_size=4).map_values(list(range(13)))
        assert values == [2 * i for i in range(13)]

    def test_serial_matches_parallel(self):
        items = list(range(10))
        serial = ParallelMap(_double, workers=1).map_values(items)
        parallel = ParallelMap(_double, workers=4).map_values(items)
        assert serial == parallel

    def test_parallel_map_convenience(self):
        assert parallel_map(_double, [1, 2, 3], workers=2) == [2, 4, 6]

    def test_warm_worker_reuse(self):
        """Many more tasks than workers must not fork per task."""
        pids = ParallelMap(_pid_of, workers=2).map_values(list(range(16)))
        assert len(set(pids)) <= 2


class TestFailures:
    def test_exception_isolated_to_task(self):
        outcomes = ParallelMap(_raise_on_odd, workers=2).map(list(range(6)))
        assert [o.ok for o in outcomes] == [True, False, True, False, True, False]
        assert "ValueError" in outcomes[1].error
        assert outcomes[0].value == 0

    def test_map_values_raises_with_failures(self):
        with pytest.raises(ParallelMapError) as err:
            ParallelMap(_raise_on_odd, workers=2).map_values(list(range(4)))
        assert len(err.value.failures) == 2
        assert {f.index for f in err.value.failures} == {1, 3}

    def test_crash_isolated_to_task(self):
        """A worker hard-dying fails only its task; the rest complete."""
        items = ["a", "b", "boom", "c", "d"]
        outcomes = ParallelMap(_crash_on_boom, workers=2).map(items)
        assert [o.ok for o in outcomes] == [True, True, False, True, True]
        assert "exitcode" in outcomes[2].error
        assert [o.value for o in outcomes if o.ok] == ["a", "b", "c", "d"]

    def test_crash_does_not_kill_parent_for_single_item(self):
        """Even one item goes through the pool when workers > 1."""
        outcomes = ParallelMap(_crash_on_boom, workers=2).map(["boom"])
        assert not outcomes[0].ok

    def test_timeout_kills_hung_worker(self):
        items = ["a", "slow", "b"]
        outcomes = ParallelMap(_sleep_if_slow, workers=2, timeout=0.5).map(items)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "timeout" in outcomes[1].error


class TestRetries:
    def test_retry_attempts_counted(self, tmp_path):
        marker = tmp_path / "succeeded-once"

        def flaky(x):
            # Fails until the marker exists (created on the first failure),
            # so the retry attempt succeeds.
            if x == "flaky" and not marker.exists():
                marker.write_text("x")
                raise RuntimeError("transient")
            return x

        outcomes = ParallelMap(flaky, workers=2, retries=2).map(["ok", "flaky"])
        assert all(o.ok for o in outcomes)
        by_value = {o.value: o for o in outcomes}
        assert by_value["ok"].attempts == 1
        assert by_value["flaky"].attempts == 2

    def test_retries_exhausted_reports_attempts(self):
        outcomes = ParallelMap(_raise_on_odd, workers=2, retries=2).map([1])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3  # first try + 2 retries

    def test_serial_path_same_retry_policy(self):
        outcomes = ParallelMap(
            _raise_on_odd, workers=1, retries=1, backoff_base=0.01
        ).map([1])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_seeds_stable_across_pool_sizes(self, workers):
        outcomes = ParallelMap(_echo_seeded, workers=workers, root_seed=42).map(
            list(range(8))
        )
        for i, outcome in enumerate(outcomes):
            assert outcome.value == (i, derive_seed(42, i))
            assert outcome.seed == derive_seed(42, i)

    def test_parallel_values_bit_identical_to_serial(self):
        items = list(range(8))
        serial = ParallelMap(_echo_seeded, workers=1, root_seed=7).map_values(items)
        parallel = ParallelMap(_echo_seeded, workers=4, root_seed=7).map_values(items)
        assert serial == parallel

    def test_seed_survives_retry(self, tmp_path):
        marker = tmp_path / "failed-once"

        def flaky(item, seed):
            if not marker.exists():
                marker.write_text("x")
                raise RuntimeError("transient")
            return seed

        outcomes = ParallelMap(flaky, workers=2, root_seed=5, retries=1).map([0])
        assert outcomes[0].ok
        assert outcomes[0].value == derive_seed(5, 0)
