"""Deterministic seed derivation: pure in (root, index), well-spread."""

import pytest

from repro.parallel.seeds import derive_seed, derive_seeds, spawn_key


class TestDeriveSeed:
    def test_pure_function(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_distinct_across_indices(self):
        seeds = [derive_seed(0, i) for i in range(1000)]
        assert len(set(seeds)) == 1000

    def test_distinct_across_roots(self):
        assert derive_seed(0, 0) != derive_seed(1, 0)

    def test_independent_of_enumeration_order(self):
        """Seed for task i never depends on how many tasks exist."""
        few = [derive_seed(7, i) for i in range(4)]
        many = [derive_seed(7, i) for i in range(64)]
        assert many[:4] == few

    def test_64_bit_range(self):
        for i in range(100):
            s = derive_seed(123, i)
            assert 0 <= s < 2**64

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)

    def test_derive_seeds_matches_scalar(self):
        assert derive_seeds(9, 5) == tuple(derive_seed(9, i) for i in range(5))


class TestSpawnKey:
    def test_single_level_matches_derive_seed(self):
        assert spawn_key(42, (3,)) == derive_seed(42, 3)

    def test_hierarchical_paths_distinct(self):
        keys = {spawn_key(0, (i, j)) for i in range(8) for j in range(8)}
        assert len(keys) == 64

    def test_path_prefix_not_colliding(self):
        assert spawn_key(0, (1,)) != spawn_key(0, (1, 0))
