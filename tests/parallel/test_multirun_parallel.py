"""Parallel sweeps reproduce serial numbers; worker obs logs get merged."""

import pytest

from repro import obs
from repro.harness.experiments import experiment_figure1
from repro.harness.grid import parse_seeds, run_grid
from repro.harness.multirun import run_seeded


class TestRunSeededParallel:
    def test_workers_bit_identical_to_serial(self):
        seeds = [0, 1, 2]
        serial = run_seeded(experiment_figure1, seeds, workers=1)
        parallel = run_seeded(experiment_figure1, seeds, workers=2)
        assert serial.stats == parallel.stats  # exact float equality, not approx
        assert serial.seeds == parallel.seeds

    def test_worker_logs_merged_into_run_events(self, tmp_path):
        with obs.session(tmp_path, label="test-sweep"):
            run_seeded(experiment_figure1, [0, 1], workers=2)
            # merge_worker_logs runs inside run_seeded: per-worker files
            # are already folded into events.jsonl and removed.
            assert not list(tmp_path.glob("events-worker*.jsonl"))
            assert (tmp_path / "events.jsonl").exists()

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_seeded(experiment_figure1, [], workers=2)


class TestRunGrid:
    def test_grid_parallel_matches_serial(self):
        serial = run_grid(["figure1"], [0, 1], workers=1)
        parallel = run_grid(["figure1"], [0, 1], workers=2)
        assert serial.ok and parallel.ok
        assert serial.aggregates["figure1"].stats == parallel.aggregates["figure1"].stats

    def test_grid_reports_shape(self):
        result = run_grid(["figure1"], [0, 1], workers=2)
        assert result.experiments == ("figure1",)
        assert result.seeds == (0, 1)
        assert len(result.aggregates["figure1"].runs) == 2
        assert "figure1" in result.table()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_grid(["no-such-experiment"], [0])

    def test_saves_per_cell_results(self, tmp_path):
        run_grid(["figure1"], [0, 1], workers=1, out=tmp_path)
        assert (tmp_path / "figure1_seed0.json").exists()
        assert (tmp_path / "figure1_seed1.json").exists()


class TestParseSeeds:
    def test_range_inclusive(self):
        assert parse_seeds("0-9") == list(range(10))

    def test_comma_list(self):
        assert parse_seeds("0,1,5") == [0, 1, 5]

    def test_mixed(self):
        assert parse_seeds("0-3,8") == [0, 1, 2, 3, 8]

    def test_negative_start(self):
        assert parse_seeds("-2-1") == [-2, -1, 0, 1]

    def test_int_sequence_passthrough(self):
        assert parse_seeds([3, 4]) == [3, 4]

    def test_descending_range_rejected(self):
        with pytest.raises(ValueError):
            parse_seeds("9-0")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_seeds("")
