"""Marlin baseline: per-stage gradient descent behaviour."""

from repro.baselines import MarlinConfig, MarlinController
from repro.transfer.engine import Observation


def obs(threads, throughputs):
    return Observation(
        threads=threads,
        throughputs=throughputs,
        sender_free=1e9,
        receiver_free=1e9,
        sender_capacity=1e9,
        receiver_capacity=1e9,
        elapsed=0.0,
        bytes_written_total=0.0,
    )


class TestMarlinController:
    def test_starts_low_and_probes_upward(self):
        ctrl = MarlinController(rng=0)
        first = ctrl.propose(obs((1, 1, 1), (0, 0, 0)))
        assert first == (2, 2, 2)  # initial upward probe from 1

    def test_climbs_when_utility_rises_linearly(self):
        """On an uncoupled linear utility surface each stage should climb."""
        ctrl = MarlinController(rng=0)
        threads = (1, 1, 1)
        for _ in range(20):
            throughputs = tuple(100.0 * n for n in threads)  # linear payoff
            threads = ctrl.propose(obs(threads, throughputs))
        assert all(n >= 8 for n in threads)

    def test_respects_max_threads(self):
        ctrl = MarlinController(MarlinConfig(max_threads=10), rng=0)
        threads = (1, 1, 1)
        for _ in range(50):
            throughputs = tuple(100.0 * n for n in threads)
            threads = ctrl.propose(obs(threads, throughputs))
            assert all(1 <= n <= 10 for n in threads)

    def test_never_below_one(self):
        ctrl = MarlinController(rng=0)
        threads = (5, 5, 5)
        for _ in range(50):
            threads = ctrl.propose(obs(threads, (0.0, 0.0, 0.0)))  # zero utility
            assert all(n >= 1 for n in threads)

    def test_keeps_dithering_on_flat_utility(self):
        """Marlin never settles: flat gradients trigger ±1 dither (the
        fluctuation the paper shows in Fig. 5)."""
        ctrl = MarlinController(rng=0)
        threads = (10, 10, 10)
        seen = set()
        for _ in range(30):
            threads = ctrl.propose(obs(threads, (1000.0, 1000.0, 1000.0)))
            seen.add(threads)
        assert len(seen) > 3

    def test_reset_restores_initial_state(self):
        ctrl = MarlinController(rng=0)
        for _ in range(5):
            ctrl.propose(obs((5, 5, 5), (500, 500, 500)))
        ctrl.reset()
        assert ctrl.propose(obs((1, 1, 1), (0, 0, 0))) == (2, 2, 2)

    def test_stages_are_independent(self):
        """Feeding one stage a rising utility and another a flat one must
        produce different trajectories (decoupled optimizers)."""
        ctrl = MarlinController(rng=0)
        threads = (1, 1, 1)
        for _ in range(15):
            throughputs = (100.0 * threads[0], 50.0, 50.0)
            threads = ctrl.propose(obs(threads, throughputs))
        assert threads[0] > threads[1] or threads[0] > threads[2]
