"""Online single-parameter DRL baseline (Hasibul et al. [17])."""

import numpy as np

from repro.baselines import OnlineDRLController
from repro.core.ppo import PPOConfig
from repro.transfer.engine import Observation


def obs(cc_tput=500.0, sender_free=0.5e9, receiver_free=0.5e9):
    return Observation(
        threads=(1, 1, 1),
        throughputs=(600.0, 550.0, cc_tput),
        sender_free=sender_free,
        receiver_free=receiver_free,
        sender_capacity=1e9,
        receiver_capacity=1e9,
        elapsed=0.0,
        bytes_written_total=0.0,
    )


def make(**kw):
    kw.setdefault("ppo_config", PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1))
    kw.setdefault("rng", 0)
    return OnlineDRLController(max_threads=30, throughput_scale=1000.0, **kw)


class TestController:
    def test_monolithic_triple(self):
        ctrl = make(parallelism=4)
        triple = ctrl.propose(obs())
        assert triple[0] == triple[2]
        assert triple[1] == triple[0] * 4

    def test_cc_in_range(self):
        ctrl = make()
        for _ in range(30):
            triple = ctrl.propose(obs())
            assert 1 <= triple[0] <= 30

    def test_learns_after_episode_boundary(self):
        ctrl = make(steps_per_episode=5)
        before = {k: v.copy() for k, v in ctrl.agent.policy.state_dict().items()}
        for _ in range(12):  # > 2 episodes worth of proposals
            ctrl.propose(obs())
        assert ctrl.episodes_completed >= 2
        after = ctrl.agent.policy.state_dict()
        assert any(not np.array_equal(before[k], v) for k, v in after.items())

    def test_reset_keeps_learning(self):
        """reset() starts a new transfer but keeps the learned weights."""
        ctrl = make(steps_per_episode=3)
        for _ in range(7):
            ctrl.propose(obs())
        learned = ctrl.episodes_completed
        state = {k: v.copy() for k, v in ctrl.agent.policy.state_dict().items()}
        ctrl.reset()
        assert ctrl.episodes_completed == learned
        for k, v in ctrl.agent.policy.state_dict().items():
            np.testing.assert_array_equal(state[k], v)

    def test_end_to_end_transfer(self):
        from repro.emulator import Testbed, fig5_read_bottleneck
        from repro.transfer import EngineConfig, ModularTransferEngine
        from repro.transfer.files import uniform_dataset

        ctrl = make()
        result = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0),
            uniform_dataset(5, 1e9),
            ctrl,
            EngineConfig(max_seconds=900),
        ).run()
        assert result.completed
        assert ctrl.episodes_completed >= 1

    def test_online_explorer_slower_than_oracle(self):
        """The warm-up exploration costs real transfer time — the gap
        AutoMDT's offline training removes."""
        from repro.baselines import StaticController
        from repro.emulator import Testbed, fig5_read_bottleneck
        from repro.transfer import EngineConfig, ModularTransferEngine
        from repro.transfer.files import uniform_dataset

        dataset = uniform_dataset(10, 1e9)
        oracle = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0), dataset,
            StaticController((13, 7, 5)), EngineConfig(max_seconds=900),
        ).run()
        online = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0), dataset,
            make(), EngineConfig(max_seconds=900),
        ).run()
        assert online.completion_time > oracle.completion_time
