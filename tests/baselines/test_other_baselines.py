"""Joint GD, Globus, static, heuristic baselines."""

import numpy as np

from repro.baselines import (
    GlobusController,
    MultivariateGDConfig,
    MultivariateGDController,
    ProbeHeuristicController,
    StaticController,
)
from repro.transfer.engine import Observation


def obs(threads, throughputs):
    return Observation(
        threads=threads,
        throughputs=throughputs,
        sender_free=1e9,
        receiver_free=1e9,
        sender_capacity=1e9,
        receiver_capacity=1e9,
        elapsed=0.0,
        bytes_written_total=0.0,
    )


class TestMultivariateGD:
    def test_initial_probe_moves_all_axes(self):
        ctrl = MultivariateGDController(rng=0)
        assert ctrl.propose(obs((1, 1, 1), (0, 0, 0))) == (2, 2, 2)

    def test_shared_gradient_couples_axes(self):
        """The joint finite-difference gradient moves axes together — the
        §III failure mode (it cannot attribute utility change per axis)."""
        ctrl = MultivariateGDController(rng=0)
        threads = (1, 1, 1)
        history = []
        for _ in range(12):
            throughputs = (100.0 * threads[0], 60.0 * threads[1], 60.0 * threads[2])
            threads = ctrl.propose(obs(threads, throughputs))
            history.append(threads)
        spreads = [max(t) - min(t) for t in history]
        # Axes move in near lock-step, unlike truly independent optimizers.
        assert np.mean(spreads) < 4

    def test_bounds(self):
        ctrl = MultivariateGDController(MultivariateGDConfig(max_threads=8), rng=0)
        threads = (1, 1, 1)
        for _ in range(30):
            threads = ctrl.propose(obs(threads, (1e3, 1e3, 1e3)))
            assert all(1 <= n <= 8 for n in threads)

    def test_reset(self):
        ctrl = MultivariateGDController(rng=0)
        ctrl.propose(obs((3, 3, 3), (100, 100, 100)))
        ctrl.reset()
        assert ctrl.propose(obs((1, 1, 1), (0, 0, 0))) == (2, 2, 2)


class TestGlobus:
    def test_static_expansion(self):
        ctrl = GlobusController()
        for _ in range(3):
            assert ctrl.propose(obs((1, 1, 1), (0, 0, 0))) == (4, 32, 4)

    def test_custom_params(self):
        assert GlobusController(2, 4).propose(obs((1, 1, 1), (0, 0, 0))) == (2, 8, 2)


class TestStatic:
    def test_constant(self):
        ctrl = StaticController((13, 7, 5))
        assert ctrl.propose(obs((1, 1, 1), (0, 0, 0))) == (13, 7, 5)


class TestProbeHeuristic:
    def test_climbs_while_improving(self):
        ctrl = ProbeHeuristicController(max_threads=30)
        threads = ctrl.propose(obs((1, 1, 1), (0, 0, 0)))
        for tput in (200.0, 400.0, 600.0, 800.0):
            threads = ctrl.propose(obs(threads, (tput, tput, tput)))
        assert threads[0] >= 7

    def test_backs_off_when_flat(self):
        ctrl = ProbeHeuristicController(max_threads=30)
        threads = ctrl.propose(obs((1, 1, 1), (0, 0, 0)))
        # Climb on improving feedback, then go flat.
        for tput in (200.0, 400.0, 600.0):
            threads = ctrl.propose(obs(threads, (tput, tput, tput)))
        peak = threads[0]
        for _ in range(4):
            threads = ctrl.propose(obs(threads, (600.0, 600.0, 600.0)))
        assert threads[0] <= peak + 2  # stopped climbing

    def test_monolithic_triple_shape(self):
        ctrl = ProbeHeuristicController(parallelism=4, max_threads=40)
        triple = ctrl.propose(obs((1, 1, 1), (100, 100, 100)))
        assert triple[0] == triple[2]
        assert triple[1] == min(triple[0] * 4, 40)

    def test_reset(self):
        ctrl = ProbeHeuristicController()
        ctrl.propose(obs((1, 1, 1), (100, 100, 100)))
        ctrl.reset()
        assert ctrl._cc == 1.0


class TestEndToEndShapes:
    """Integration: baseline behaviour on the actual coupled testbed."""

    def test_marlin_approaches_optimum_slower_than_oracle(self):
        from repro.baselines import MarlinController
        from repro.emulator import Testbed, fig5_read_bottleneck
        from repro.transfer import EngineConfig, ModularTransferEngine
        from repro.transfer.files import uniform_dataset

        dataset = uniform_dataset(10, 1e9)
        oracle = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0), dataset,
            StaticController((13, 7, 5)), EngineConfig(max_seconds=600),
        ).run()
        marlin = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0), dataset,
            MarlinController(rng=0), EngineConfig(max_seconds=600, probe_noise=0.02),
        ).run()
        assert oracle.completed and marlin.completed
        assert marlin.completion_time > oracle.completion_time

    def test_globus_underutilizes_fast_link(self):
        from repro.emulator import Testbed, fabric_ncsa_tacc
        from repro.transfer import EngineConfig, ModularTransferEngine
        from repro.transfer.files import uniform_dataset

        result = ModularTransferEngine(
            Testbed(fabric_ncsa_tacc(), rng=0),
            uniform_dataset(10, 1e9),
            GlobusController(),
            EngineConfig(max_seconds=600),
        ).run()
        # 4 read threads x 1 Gbps each ≈ 4 Gbps on a 25 Gbps path.
        assert result.effective_throughput < 6000.0
