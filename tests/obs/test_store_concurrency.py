"""Store concurrency and crash-safety: WAL appends from parallel workers.

Two classes of hazard:

* concurrent appenders — two ``ParallelMap`` workers ingesting into the
  same database file at once must both land, with no lost or duplicated
  rows (WAL + ``BEGIN IMMEDIATE`` serialise the writes);
* torn writes — a process dying mid-ingest must leave previously
  committed runs intact and the partial run completely absent (the whole
  ingest is one transaction).
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.obs.store import ResultsStore, RunRecord
from repro.parallel import ParallelMap

RUNS_PER_WORKER = 8


def _ingest_batch(item):
    """Worker body: append RUNS_PER_WORKER runs to the shared database."""
    db_path, worker = item
    store = ResultsStore(db_path)
    ids = []
    for j in range(RUNS_PER_WORKER):
        ids.append(
            store.ingest(
                RunRecord(
                    kind="experiment",
                    scenario=f"worker{worker}",
                    seed=j,
                    config={"worker": worker, "j": j},
                    started=1000.0 * worker + j,
                    finished=1000.0 * worker + j + 1,
                    metrics={"value": float(j), "worker": float(worker)},
                )
            )
        )
    return ids


def test_two_workers_append_concurrently(tmp_path):
    db = str(tmp_path / "shared.db")
    pool = ParallelMap(_ingest_batch, workers=2)
    ids = pool.map_values([(db, 0), (db, 1)])

    all_ids = [run_id for batch in ids for run_id in batch]
    assert len(set(all_ids)) == 2 * RUNS_PER_WORKER

    store = ResultsStore(db)
    counts = store.counts()
    assert counts["runs"] == 2 * RUNS_PER_WORKER
    assert counts["metrics"] == 2 * RUNS_PER_WORKER * 2
    for worker in (0, 1):
        rows = store.runs(kind="experiment", scenario=f"worker{worker}")
        assert len(rows) == RUNS_PER_WORKER
        assert sorted(row["seed"] for row in rows) == list(range(RUNS_PER_WORKER))


_CRASH_SCRIPT = """
import os, sys
from repro.obs.store import ResultsStore, RunRecord

store = ResultsStore(sys.argv[1])
store.ingest(RunRecord(kind="experiment", scenario="committed", seed=0,
                       started=1.0, finished=2.0, metrics={"m": 1.0}))
# Second ingest: open the transaction, write the run and a metric row,
# then die before COMMIT — simulating a crash mid-ingest.
conn = store.connection
conn.execute("BEGIN IMMEDIATE")
conn.execute(
    "INSERT INTO runs VALUES ('torn','experiment','partial','rev',1,'fp','{}',3.0,4.0,'')"
)
conn.execute("INSERT INTO metrics VALUES ('torn','m',1.0,'{}')")
os._exit(1)
"""


def test_crash_mid_ingest_leaves_partial_absent(tmp_path):
    db = tmp_path / "crash.db"
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    proc = subprocess.run(
        [sys.executable, "-c", _CRASH_SCRIPT, str(db)],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 1, proc.stderr

    store = ResultsStore(db)
    rows = store.runs()
    assert [row["scenario"] for row in rows] == ["committed"]
    assert store.counts()["metrics"] == 1  # only the committed run's metric

    # The store stays fully writable after the crashed writer.
    store.ingest(
        RunRecord(kind="experiment", scenario="after", seed=2,
                  started=5.0, finished=6.0, metrics={"m": 2.0})
    )
    assert store.counts()["runs"] == 2
