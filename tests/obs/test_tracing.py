"""Span tracer: nesting, wall + virtual durations, errors, events."""

import pytest

from repro.obs.tracing import Tracer


def make_tracer(sink=None):
    wall = {"t": 0.0}
    virtual = {"t": None}

    def wall_clock():
        wall["t"] += 1.0
        return wall["t"]

    tracer = Tracer(
        sink=sink, wall_clock=wall_clock, virtual_clock=lambda: virtual["t"]
    )
    return tracer, virtual


class TestSpans:
    def test_records_wall_duration(self):
        tracer, _ = make_tracer()
        with tracer.span("a"):
            pass
        (span,) = tracer.finished
        assert span.wall_duration == 1.0

    def test_nesting_sets_parent(self):
        tracer, _ = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
        names = {s.name: s for s in tracer.finished}
        assert names["inner"].parent == "outer"
        assert names["outer"].parent is None

    def test_virtual_clock_sampled_at_boundaries(self):
        tracer, virtual = make_tracer()
        virtual["t"] = 10.0
        with tracer.span("a"):
            virtual["t"] = 25.0
        (span,) = tracer.finished
        assert span.virtual_duration == 15.0

    def test_no_virtual_clock_means_none(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer.finished[0].virtual_duration is None

    def test_exception_recorded_and_propagated(self):
        records = []
        tracer, _ = make_tracer(sink=records.append)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert "RuntimeError" in tracer.finished[0].error
        assert records[0]["error"] == tracer.finished[0].error
        assert tracer.current is None  # stack unwound

    def test_sink_record_shape(self):
        records = []
        tracer, virtual = make_tracer(sink=records.append)
        virtual["t"] = 5.0
        with tracer.span("a", attempt=2):
            pass
        (rec,) = records
        assert rec["type"] == "span"
        assert rec["name"] == "a"
        assert rec["attrs"] == {"attempt": 2}
        assert rec["t_start"] == rec["t_end"] == 5.0

    def test_decorator(self):
        tracer, _ = make_tracer()

        @tracer.traced()
        def work(x):
            return x * 2

        assert work(3) == 6
        assert tracer.finished[0].name.endswith("work")


class TestEvents:
    def test_event_attaches_to_open_span(self):
        records = []
        tracer, virtual = make_tracer(sink=records.append)
        virtual["t"] = 7.0
        with tracer.span("phase"):
            tracer.event("incident/detected", kind="stall")
        event = next(r for r in records if r["type"] == "event")
        assert event["span"] == "phase"
        assert event["t"] == 7.0
        assert event["attrs"] == {"kind": "stall"}
        assert tracer.finished[0].events == [event]

    def test_event_with_explicit_time(self):
        tracer, _ = make_tracer()
        record = tracer.event("e", t=3.5)
        assert record["t"] == 3.5
        assert record["span"] is None
