"""Metrics registry: counters, gauges, histograms, families, exporters."""

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        assert h.bucket_counts() == [(1.0, 1), (10.0, 2), (float("inf"), 3)]

    def test_nan_skipped(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(float("nan"))
        assert h.count == 0

    def test_mean_empty_is_nan(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.mean != h.mean

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(10.0, 1.0))

    def test_observe_many_matches_observe(self):
        values = [0.5, 5.0, 50.0, 0.001, float("nan"), 9.99, 10.0]
        one = Histogram("a", buckets=(1.0, 10.0))
        bulk = Histogram("b", buckets=(1.0, 10.0))
        for v in values:
            one.observe(v)
        bulk.observe_many(values)
        assert bulk.count == one.count
        assert bulk.sum == pytest.approx(one.sum)
        assert bulk.bucket_counts() == one.bucket_counts()

    def test_observe_many_empty(self):
        h = Histogram("a", buckets=(1.0,))
        h.observe_many([])
        h.observe_many([float("nan")])
        assert h.count == 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValueError):
            reg.gauge("n")

    def test_family_children_by_labels(self):
        reg = MetricsRegistry()
        fam = reg.counter("incidents", label_names=("kind",))
        fam.labels(kind="link_flap").inc()
        fam.labels(kind="link_flap").inc()
        fam.labels(kind="stall").inc()
        assert fam.labels(kind="link_flap").value == 2

    def test_family_wrong_labels_raises(self):
        reg = MetricsRegistry()
        fam = reg.gauge("g", label_names=("stage",))
        with pytest.raises(ValueError):
            fam.labels(other="x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"][0]["value"] == 2
        assert snap["h"][0]["count"] == 1

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("transfer/bytes").inc(100)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        fam = reg.gauge("stage_usage", label_names=("stage",))
        fam.labels(stage="read").set(0.7)
        text = reg.to_prometheus()
        assert "# TYPE transfer_bytes counter" in text
        assert "transfer_bytes 100" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert 'stage_usage{stage="read"} 0.7' in text

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
