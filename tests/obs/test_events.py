"""JSONL event log: buffered writer lanes and the tolerant reader."""

import json

import pytest

from repro.obs.events import JsonlEventWriter, read_events, tail_events


class TestWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlEventWriter(path) as w:
            w.write({"type": "meta", "label": "t"})
            w.write({"type": "metric", "name": "x", "t": 1.0, "value": 2.0})
        records = read_events(path)
        assert [r["type"] for r in records] == ["meta", "metric"]
        assert records[1]["value"] == 2.0

    def test_append_mode_extends(self, tmp_path):
        path = tmp_path / "e.jsonl"
        for i in range(2):
            with JsonlEventWriter(path) as w:
                w.write({"i": i})
        assert [r["i"] for r in read_events(path)] == [0, 1]

    def test_w_mode_truncates_once(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"old":1}\n')
        w = JsonlEventWriter(path, mode="w")
        w.write({"i": 0})
        w.flush()
        w.close()
        # Reuse after close appends; the first truncate is not repeated.
        w.write({"i": 1})
        w.close()
        assert [r["i"] for r in read_events(path)] == [0, 1]

    def test_flush_every_threshold(self, tmp_path):
        path = tmp_path / "e.jsonl"
        w = JsonlEventWriter(path, flush_every=3)
        w.write({"i": 0})
        w.write({"i": 1})
        assert not path.exists() or path.read_text() == ""
        w.write({"i": 2})  # crosses the threshold
        assert len(read_events(path)) == 3
        w.close()

    def test_write_sample_deferred_format(self, tmp_path):
        path = tmp_path / "e.jsonl"
        fmt = '{"type":"sample","name":"s","t":%.3f,"v":%.3f}'
        with JsonlEventWriter(path) as w:
            w.write_sample(fmt, (1.0, 2.5))
        rec = read_events(path)[0]
        assert (rec["t"], rec["v"]) == (1.0, 2.5)

    def test_write_samples_bulk(self, tmp_path):
        path = tmp_path / "e.jsonl"
        fmt = '{"t":%.3f,"v":%.3f}'
        with JsonlEventWriter(path) as w:
            added = w.write_samples(fmt, [(0.0, 1.0), (1.0, 2.0)])
        assert added == 2
        assert [r["v"] for r in read_events(path)] == [1.0, 2.0]

    def test_write_columns_zips_at_flush(self, tmp_path):
        path = tmp_path / "e.jsonl"
        fmt = '{"t":%.3f,"a":%.3f,"b":%d}'
        times = [0.0, 1.0, 2.0]
        a = [10.0, 20.0, 30.0]
        b = [1, 2, 3]
        with JsonlEventWriter(path) as w:
            assert w.write_columns(fmt, (times, a, b), 3) == 3
            # Appends after the call must not leak into the flush (the
            # caller only promised the first `count` elements).
            times.append(99.0)
            a.append(99.0)
            b.append(99)
        records = read_events(path)
        assert len(records) == 3
        assert records[-1] == {"t": 2.0, "a": 30.0, "b": 3}

    def test_lanes_preserve_order(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlEventWriter(path) as w:
            w.write({"i": 0})
            w.write_sample('{"i":%d}', (1,))
            w.write_columns('{"i":%d}', ([2, 3],), 2)
            w.write({"i": 4})
        assert [r["i"] for r in read_events(path)] == [0, 1, 2, 3, 4]

    def test_truncate_discards(self, tmp_path):
        path = tmp_path / "e.jsonl"
        w = JsonlEventWriter(path)
        w.write({"i": 0})
        w.truncate()
        w.write({"i": 1})
        w.close()
        assert [r["i"] for r in read_events(path)] == [1]

    def test_cost_seconds_accumulates(self, tmp_path):
        w = JsonlEventWriter(tmp_path / "e.jsonl")
        w.write({"i": 0})
        w.close()
        assert w.cost_seconds > 0.0


class TestReader:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_events(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        assert read_events(path) == []

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"i":0}\n{"i":1}\n{"i":2,"unfin')
        assert [r["i"] for r in read_events(path)] == [0, 1]

    def test_truncated_final_line_strict_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"i":0}\n{"i":1,"unfin')
        with pytest.raises(ValueError):
            read_events(path, strict=True)

    def test_mid_file_corruption_always_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"i":0}\nGARBAGE\n{"i":2}\n')
        with pytest.raises(ValueError):
            read_events(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"i":0}\n\n{"i":1}\n')
        assert len(read_events(path)) == 2

    def test_tail(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("".join(json.dumps({"i": i}) + "\n" for i in range(10)))
        assert [r["i"] for r in tail_events(path, 3)] == [7, 8, 9]
        assert tail_events(path, 0) == []
