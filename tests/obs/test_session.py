"""ObsSession lifecycle, module-level helpers, no-op fast path."""

import pytest

from repro import obs
from repro.obs.events import read_events
from repro.obs.session import EVENTS_FILENAME, PROMETHEUS_FILENAME, ObsSession


@pytest.fixture(autouse=True)
def _clean_global_session():
    obs.shutdown()
    yield
    obs.shutdown()


class TestDisabledFastPath:
    def test_helpers_are_noops(self):
        assert not obs.enabled()
        assert obs.active() is None
        obs.metric("x", 1.0)
        obs.sample("s", t=0.0, v=1.0)
        obs.count("c")
        obs.observe("h", 0.5)
        obs.event("e")
        obs.set_virtual_time(1.0)
        with obs.span("nothing"):
            pass  # shared null context

    def test_span_returns_shared_null_context(self):
        assert obs.span("a") is obs.span("b")


class TestSessionLifecycle:
    def test_session_writes_log_and_snapshot(self, tmp_path):
        with obs.session(tmp_path, label="t") as sess:
            assert obs.enabled() and obs.active() is sess
            with obs.span("phase", attempt=1):
                obs.metric("m", 2.0, t=1.0)
                obs.count("c", 3)
        assert not obs.enabled()
        records = read_events(tmp_path / EVENTS_FILENAME)
        types = [r["type"] for r in records]
        assert types[0] == "meta" and types[-1] == "meta"
        assert "span" in types and "metric" in types
        closing = records[-1]
        assert closing["closed"] is True
        assert closing["events_emitted"] == len(records) - 1
        assert closing["overhead_seconds"] >= 0.0
        prom = (tmp_path / PROMETHEUS_FILENAME).read_text()
        assert "c 3" in prom

    def test_in_memory_session_has_no_writer(self):
        sess = ObsSession()
        sess.metric("m", 1.0)
        sess.count("c")
        with sess.span("a"):
            pass
        assert sess.overhead_seconds == 0.0
        assert sess.tracer.finished[0].name == "a"
        sess.close()  # no run_dir: nothing written, no error

    def test_configure_closes_previous(self, tmp_path):
        first = obs.configure(tmp_path / "a")
        obs.configure(tmp_path / "b")
        # The first session was closed: its log ends with the closing meta.
        assert read_events(tmp_path / "a" / EVENTS_FILENAME)[-1]["closed"] is True
        assert first._closed
        obs.shutdown()
        obs.shutdown()  # idempotent

    def test_exception_still_closes(self, tmp_path):
        with pytest.raises(RuntimeError):
            with obs.session(tmp_path):
                raise RuntimeError("boom")
        assert read_events(tmp_path / EVENTS_FILENAME)[-1]["closed"] is True


class TestEmission:
    def test_metric_sets_gauge_and_logs(self, tmp_path):
        with obs.session(tmp_path) as sess:
            obs.metric("queue/depth", 4.0, t=2.0)
            assert sess.registry.gauge("queue/depth").value == 4.0
        rec = next(
            r for r in read_events(tmp_path / EVENTS_FILENAME) if r["type"] == "metric"
        )
        assert (rec["name"], rec["t"], rec["value"]) == ("queue/depth", 2.0, 4.0)

    def test_sample_multifield(self, tmp_path):
        with obs.session(tmp_path):
            obs.sample("train/episode", t=0.0, reward=1.5, best_reward=2.0)
        rec = next(
            r for r in read_events(tmp_path / EVENTS_FILENAME) if r["type"] == "sample"
        )
        assert rec["reward"] == 1.5 and rec["best_reward"] == 2.0

    def test_sample_columns_counts_events(self, tmp_path):
        fmt = '{"type":"sample","name":"s","t":%.3f,"v":%.3f}'
        with obs.session(tmp_path) as sess:
            before = sess.events_emitted
            sess.sample_columns(fmt, ([0.0, 1.0], [5.0, 6.0]), 2)
            assert sess.events_emitted == before + 2
        samples = [
            r for r in read_events(tmp_path / EVENTS_FILENAME) if r["type"] == "sample"
        ]
        assert [r["v"] for r in samples] == [5.0, 6.0]

    def test_virtual_time_defaults_sample_t(self, tmp_path):
        with obs.session(tmp_path):
            obs.set_virtual_time(42.0)
            obs.metric("m", 1.0)
        rec = next(
            r for r in read_events(tmp_path / EVENTS_FILENAME) if r["type"] == "metric"
        )
        assert rec["t"] == 42.0

    def test_append_default_across_sessions(self, tmp_path):
        for _ in range(2):
            with obs.session(tmp_path):
                obs.metric("m", 1.0, t=0.0)
        records = read_events(tmp_path / EVENTS_FILENAME)
        assert sum(1 for r in records if r["type"] == "metric") == 2
