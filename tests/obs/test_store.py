"""Unit tests for the results store: identity, idempotency, queries."""

import pytest

from repro import obs
from repro.obs.store import (
    KNOWN_BENCH_SCHEMAS,
    ResultsStore,
    RunRecord,
    experiment_config,
    fingerprint_config,
    flatten_numeric,
    make_run_id,
    resolve_store,
    set_default_store,
)
from repro.utils.errors import BenchSchemaError, StoreError


@pytest.fixture
def store(tmp_path):
    s = ResultsStore(tmp_path / "results.db")
    yield s
    s.close()


def _record(**overrides):
    base = dict(
        kind="experiment",
        scenario="figure1",
        seed=0,
        config=experiment_config("figure1", fast=True),
        started=100.0,
        finished=101.0,
        metrics={"automdt_throughput_mbps": 1500.0, "nested": {"x": 2.0}},
    )
    base.update(overrides)
    return RunRecord(**base)


def test_schema_created_and_versioned(store, tmp_path):
    assert store.counts() == {"runs": 0, "metrics": 0, "artifacts": 0, "bench": 0}
    version = store.connection.execute("PRAGMA user_version").fetchone()[0]
    assert version == 1

    # A database stamped with a future schema version is refused.
    other = tmp_path / "future.db"
    conn = ResultsStore(other).connection
    conn.execute("PRAGMA user_version=99")
    conn.close()
    with pytest.raises(StoreError, match="schema version 99"):
        ResultsStore(other).connection  # noqa: B018 - property opens the db


def test_double_ingest_is_idempotent(store):
    first = store.ingest(_record())
    second = store.ingest(_record())
    assert first == second
    counts = store.counts()
    assert counts["runs"] == 1
    assert counts["metrics"] == 2  # flat throughput + nested.x, not doubled


def test_run_id_depends_on_each_identity_component():
    base = make_run_id("rev", "fp", 0, 100.0)
    assert base != make_run_id("other", "fp", 0, 100.0)
    assert base != make_run_id("rev", "fp2", 0, 100.0)
    assert base != make_run_id("rev", "fp", 1, 100.0)
    assert base != make_run_id("rev", "fp", None, 100.0)
    assert base != make_run_id("rev", "fp", 0, 200.0)
    assert base == make_run_id("rev", "fp", 0, 100.0)


def test_fingerprint_is_order_insensitive():
    assert fingerprint_config({"a": 1, "b": 2}) == fingerprint_config({"b": 2, "a": 1})
    assert fingerprint_config({"a": 1}) != fingerprint_config({"a": 2})


def test_flatten_numeric_matches_harness_convention():
    from repro.harness.multirun import flatten_summary

    summary = {
        "ok": True,
        "speed": 3.5,
        "nested": {"a": 1, "b": [1, 2]},
        "skipped": "string",
        "none": None,
    }
    assert flatten_numeric(summary) == flatten_summary(summary)


def test_labelled_metrics_round_trip(store):
    run_id = store.ingest(
        _record(
            labelled_metrics=[
                ("tenant.goodput", 10.0, {"tenant": "t0"}),
                ("tenant.goodput", 20.0, {"tenant": "t1"}),
            ]
        )
    )
    assert store.run_metrics(run_id) == {
        "automdt_throughput_mbps": 1500.0,
        "nested.x": 2.0,
    }
    labelled = store.run_metrics(run_id, labelled=True)
    assert len(labelled) == 3  # dict keyed by name keeps last labelled row


def test_completed_run_keyed_on_cell_and_rev(store):
    fingerprint = fingerprint_config(experiment_config("figure1", fast=True))
    store.ingest(_record(git_rev="revA"))
    assert (
        store.completed_run("experiment", "figure1", 0, fingerprint, git_rev="revA")
        is not None
    )
    # Different seed / fingerprint / revision: not completed.
    assert store.completed_run("experiment", "figure1", 1, fingerprint, git_rev="revA") is None
    assert store.completed_run("experiment", "figure1", 0, "other", git_rev="revA") is None
    assert store.completed_run("experiment", "figure1", 0, fingerprint, git_rev="revB") is None
    # Unfinished runs don't count as completed.
    store.ingest(_record(seed=2, finished=None, git_rev="revA"))
    assert store.completed_run("experiment", "figure1", 2, fingerprint, git_rev="revA") is None


def test_bench_ingest_validates_schema(store):
    with pytest.raises(BenchSchemaError, match="no integer 'schema'"):
        store.ingest_bench("kernels", {"bench": "kernels"})
    with pytest.raises(BenchSchemaError, match="schema version 99"):
        store.ingest_bench("kernels", {"bench": "kernels", "schema": 99})
    with pytest.raises(StoreError, match="declares suite"):
        store.ingest_bench("other", {"bench": "kernels", "schema": 1})
    assert 1 in KNOWN_BENCH_SCHEMAS


def test_bench_trajectory_and_latest(store):
    store.ingest_bench(
        "kernels", {"bench": "kernels", "schema": 1, "speedup": 4.0},
        git_rev="revA", started=100.0,
    )
    store.ingest_bench(
        "kernels", {"bench": "kernels", "schema": 1, "speedup": 5.0},
        git_rev="revB", started=200.0,
    )
    point = store.latest_bench("kernels")
    assert point is not None
    assert point.values == {"speedup": 5.0}
    assert point.git_rev == "revB"
    older = store.latest_bench("kernels", before=point.run_id)
    assert older is not None and older.values == {"speedup": 4.0}
    assert store.bench_trajectory("kernels", "speedup") == [
        (100.0, "revA", 4.0),
        (200.0, "revB", 5.0),
    ]


def test_bench_file_reingest_is_idempotent(store, tmp_path):
    path = tmp_path / "BENCH_kernels.json"
    path.write_text('{"bench": "kernels", "schema": 1, "speedup": 4.0}')
    first = store.ingest_bench("kernels", {"bench": "kernels", "schema": 1, "speedup": 4.0},
                               path=path)
    second = store.ingest_bench("kernels", {"bench": "kernels", "schema": 1, "speedup": 4.0},
                                path=path)
    assert first == second
    assert store.counts()["runs"] == 1


def test_resolve_store_precedence(store, tmp_path, monkeypatch):
    monkeypatch.delenv("AUTOMDT_STORE", raising=False)
    assert resolve_store(None) is None
    assert resolve_store(store) is store
    try:
        set_default_store(store)
        assert resolve_store(None) is store
    finally:
        set_default_store(None)
    env_db = tmp_path / "env.db"
    monkeypatch.setenv("AUTOMDT_STORE", str(env_db))
    resolved = resolve_store(None)
    assert resolved is not None and resolved.path == env_db


def test_obs_session_close_ingests_registry(store, tmp_path, monkeypatch):
    monkeypatch.delenv("AUTOMDT_STORE", raising=False)
    try:
        set_default_store(store)
        with obs.session(tmp_path / "run", label="unit") as sess:
            sess.count("transfers_total", 3)
            sess.observe("latency", 0.5)
    finally:
        set_default_store(None)
    runs = store.runs(kind="obs")
    assert len(runs) == 1
    metrics = store.run_metrics(runs[0]["run_id"])
    assert metrics["transfers_total"] == 3.0
    assert metrics["latency.count"] == 1.0
    # An empty session leaves no run row behind.
    try:
        set_default_store(store)
        with obs.session(tmp_path / "run2", label="empty"):
            pass
    finally:
        set_default_store(None)
    assert len(store.runs(kind="obs")) == 1
