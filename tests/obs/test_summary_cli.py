"""End to end: instrumented runs → event log → summary / CLI / exporters.

The acceptance path of the observability subsystem: run a supervised
transfer through an injected link flap (and a tiny training loop) with a
session active, then reconstruct phases, series and incidents from nothing
but the ``events.jsonl`` it left behind.
"""

import pytest

from repro import obs
from repro.baselines import StaticController
from repro.emulator import (
    FaultSchedule,
    LinkFlap,
    NetworkConfig,
    StorageConfig,
    Testbed,
    TestbedConfig,
)
from repro.harness.cli import main as cli_main
from repro.obs.exporters import export_run_csv, write_prometheus_from_events
from repro.obs.summary import diff_runs, render_summary, summarize_run
from repro.transfer import (
    EngineConfig,
    ModularTransferEngine,
    SupervisorConfig,
    TransferSupervisor,
)
from repro.transfer.files import uniform_dataset
from repro.utils.units import GiB


@pytest.fixture(autouse=True)
def _clean_global_session():
    obs.shutdown()
    yield
    obs.shutdown()


def make_engine(faults=None, *, max_seconds=240.0, gigabytes=5):
    testbed = Testbed(
        TestbedConfig(
            source=StorageConfig(tpt=80, bandwidth=1000),
            destination=StorageConfig(tpt=200, bandwidth=1000),
            network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
            sender_buffer_capacity=1.0 * GiB,
            receiver_buffer_capacity=1.0 * GiB,
            max_threads=30,
        ),
        rng=0,
        faults=faults,
    )
    return ModularTransferEngine(
        testbed,
        uniform_dataset(gigabytes, 1e9),
        StaticController((13, 7, 5)),
        EngineConfig(max_seconds=max_seconds, seed=0),
    )


@pytest.fixture(scope="module")
def flap_run(tmp_path_factory):
    """One instrumented supervised transfer through a link flap."""
    run_dir = tmp_path_factory.mktemp("flap-run")
    with obs.session(run_dir, label="test:flap"):
        engine = make_engine(FaultSchedule([LinkFlap(start=10.0, duration=8.0)]))
        result = TransferSupervisor(engine, SupervisorConfig(seed=0)).run()
    assert result.completed
    return run_dir, result


class TestTransferSummary:
    def test_spans_reconstructed(self, flap_run):
        run_dir, result = flap_run
        summary = summarize_run(run_dir)
        assert summary.label == "test:flap"
        assert "transfer/supervised" in summary.spans
        assert summary.spans["transfer/run"].count == len(result.attempts)
        # Virtual span time tracks the supervised transfer's virtual clock.
        sup = summary.spans["transfer/supervised"]
        assert sup.virtual_seconds == pytest.approx(result.completion_time, rel=0.05)

    def test_interval_series_reconstructed(self, flap_run):
        run_dir, result = flap_run
        summary = summarize_run(run_dir)
        series = summary.metrics["transfer/interval.throughput_write"]
        total = sum(
            len(s)
            for name, s in summary.metrics.items()
            if name.startswith("transfer/interval.throughput_write")
        )
        assert total == len(result.metrics.throughput_write)
        assert series.mean() > 0

    def test_incident_reconstructed_with_ttd_ttr(self, flap_run):
        run_dir, result = flap_run
        summary = summarize_run(run_dir)
        assert len(summary.incidents) == len(result.metrics.recoveries) == 1
        incident = summary.incidents[0]
        recovery = result.metrics.recoveries[0]
        assert incident.kind == "link_flap"
        assert incident.time_to_detect == pytest.approx(
            recovery.t_detected - recovery.t_onset
        )
        assert incident.time_to_recover == pytest.approx(recovery.time_to_recover)
        assert incident.retries == recovery.retries

    def test_overhead_self_reported(self, flap_run):
        run_dir, _ = flap_run
        summary = summarize_run(run_dir)
        assert summary.overhead_seconds is not None
        assert summary.overhead_seconds >= 0.0

    def test_render_mentions_everything(self, flap_run):
        run_dir, _ = flap_run
        text = render_summary(summarize_run(run_dir))
        assert "transfer/supervised" in text
        assert "link_flap" in text
        assert "transfer/interval.throughput_write" in text


class BanditEnv:
    """1-step-quality env: reward = 1 - |action - target|; converges fast."""

    state_dim = 8
    action_dim = 3

    def __init__(self, target=(0.4, 0.2, 0.1), steps=5):
        import numpy as np

        self.target = np.asarray(target)
        self.steps = steps
        self._count = 0

    def reset(self):
        import numpy as np

        self._count = 0
        return np.zeros(8)

    def step(self, action):
        import numpy as np

        err = np.abs(np.asarray(action).reshape(-1) - self.target).mean()
        reward = float(np.clip(1.0 - err, 0.0, 1.0))
        self._count += 1
        return np.zeros(8), reward, self._count >= self.steps, {}


class TestTrainingSummary:
    def test_ppo_series_reconstructed(self, tmp_path):
        from repro.core.ppo import PPOAgent, PPOConfig
        from repro.core.training import TrainingConfig, train

        agent = PPOAgent(
            config=PPOConfig(hidden_dim=16, policy_blocks=1, value_blocks=1), rng=0
        )
        with obs.session(tmp_path, label="test:train"):
            train(
                agent,
                BanditEnv(),
                TrainingConfig(
                    max_episodes=12, steps_per_episode=5, stagnation_episodes=12
                ),
            )
        summary = summarize_run(tmp_path)
        assert "train/offline" in summary.spans
        assert "ppo/update" in summary.spans
        for name in ("ppo/loss", "ppo/entropy", "ppo/approx_kl",
                     "ppo/clip_fraction", "train/episode.reward_fraction"):
            assert name in summary.metrics, name
            assert len(summary.metrics[name]) > 0


class TestCli:
    def test_summary_exit_zero(self, flap_run, capsys):
        run_dir, _ = flap_run
        assert cli_main(["obs", "summary", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "supervisor incidents" in out

    def test_tail(self, flap_run, capsys):
        run_dir, _ = flap_run
        assert cli_main(["obs", "tail", str(run_dir), "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_diff_self(self, flap_run, capsys):
        run_dir, _ = flap_run
        assert cli_main(["obs", "diff", str(run_dir), str(run_dir)]) == 0
        assert "+0.0%" in capsys.readouterr().out

    def test_export(self, flap_run, capsys):
        run_dir, _ = flap_run
        assert cli_main(["obs", "export", str(run_dir)]) == 0
        assert (run_dir / "series.csv").read_text().startswith("time,")
        assert "TYPE" in (run_dir / "metrics.from-events.prom").read_text()

    def test_missing_run_exits_two(self, tmp_path, capsys):
        assert cli_main(["obs", "summary", str(tmp_path / "nope")]) == 2
        assert "no event log" in capsys.readouterr().err

    def test_run_command_accepts_obs_flag(self, tmp_path, capsys):
        # The flag is wired through main(); a missing experiment must not
        # leave a dangling global session behind.
        code = cli_main(["run", "definitely-not-an-experiment", "--obs", str(tmp_path)])
        assert code != 0
        assert not obs.enabled()


class TestExporters:
    def test_diff_function_direct(self, flap_run):
        run_dir, _ = flap_run
        a = summarize_run(run_dir)
        text = diff_runs(a, a, label_a="x", label_b="y")
        assert "metric diff" in text

    def test_prometheus_from_events(self, flap_run):
        run_dir, _ = flap_run
        out = write_prometheus_from_events(run_dir, run_dir / "rebuilt.prom")
        text = out.read_text()
        assert 'incidents_total{kind="link_flap"} 1' in text
        assert "span_wall_seconds" in text

    def test_csv_custom_path(self, flap_run, tmp_path):
        run_dir, _ = flap_run
        out = export_run_csv(run_dir, tmp_path / "out.csv")
        header = out.read_text().splitlines()[0]
        assert "transfer/interval.throughput_write" in header
