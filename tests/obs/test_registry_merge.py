"""Satellite: registry merge — fold worker registries into a session registry."""

import pytest

from repro.obs.registry import Histogram, MetricsRegistry


def worker(bytes_done, tenant):
    reg = MetricsRegistry()
    reg.counter("bytes").inc(bytes_done)
    reg.counter("fleet/bytes", label_names=("tenant",)).labels(tenant=tenant).inc(
        bytes_done
    )
    return reg


class TestScalarMerge:
    def test_counters_add(self):
        main = MetricsRegistry()
        main.counter("events").inc(3)
        other = MetricsRegistry()
        other.counter("events").inc(4)
        main.merge_from(other)
        assert main.counter("events").value == 7

    def test_gauges_last_write_wins(self):
        main = MetricsRegistry()
        main.gauge("depth").set(10.0)
        other = MetricsRegistry()
        other.gauge("depth").set(3.0)
        main.merge_from(other)
        assert main.gauge("depth").value == 3.0

    def test_histograms_sum_bucketwise(self):
        main = MetricsRegistry()
        main.histogram("lat", buckets=(1.0, 5.0)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("lat", buckets=(1.0, 5.0)).observe(3.0)
        other.histogram("lat", buckets=(1.0, 5.0)).observe(100.0)
        main.merge_from(other)
        merged = main.histogram("lat", buckets=(1.0, 5.0))
        assert merged.count == 3
        assert merged.sum == pytest.approx(103.5)
        assert merged.bucket_counts() == [(1.0, 1), (5.0, 2), (float("inf"), 3)]

    def test_histogram_bucket_mismatch_raises(self):
        main = MetricsRegistry()
        main.histogram("lat", buckets=(1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("lat", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            main.merge_from(other)

    def test_merge_into_empty_registry_copies_values(self):
        main = MetricsRegistry()
        main.merge_from(worker(100.0, "a"))
        assert main.counter("bytes").value == 100.0
        assert "fleet/bytes" in main

    def test_kind_mismatch_raises(self):
        main = MetricsRegistry()
        main.counter("x").inc()
        other = MetricsRegistry()
        other.gauge("x").set(1.0)
        with pytest.raises(ValueError):
            main.merge_from(other)


class TestFamilyMerge:
    def test_children_merge_on_full_label_tuple(self):
        main = worker(100.0, "a")
        main.merge_from(worker(40.0, "a"))
        main.merge_from(worker(7.0, "b"))
        family = main.counter("fleet/bytes", label_names=("tenant",))
        per_tenant = {c.labels["tenant"]: c.value for c in family.children()}
        assert per_tenant == {"a": 140.0, "b": 7.0}

    def test_new_label_rows_do_not_collide(self):
        main = worker(1.0, "a")
        main.merge_from(worker(2.0, "b"))
        family = main.counter("fleet/bytes", label_names=("tenant",))
        assert len(list(family.children())) == 2

    def test_family_vs_scalar_mismatch_raises(self):
        main = MetricsRegistry()
        main.counter("m")
        other = MetricsRegistry()
        other.counter("m", label_names=("tenant",)).labels(tenant="a").inc()
        with pytest.raises(ValueError):
            main.merge_from(other)

    def test_histogram_families_merge(self):
        def reg_with(stage, value):
            reg = MetricsRegistry()
            fam = reg.histogram("stage/lat", buckets=(1.0,), label_names=("stage",))
            fam.labels(stage=stage).observe(value)
            return reg

        main = reg_with("read", 0.5)
        main.merge_from(reg_with("read", 0.7))
        main.merge_from(reg_with("net", 2.0))
        family = main.histogram("stage/lat", buckets=(1.0,), label_names=("stage",))
        by_stage = {c.labels["stage"]: c for c in family.children()}
        assert by_stage["read"].count == 2
        assert by_stage["net"].count == 1

    def test_merge_order_is_worker_oldest_first_for_gauges(self):
        # Documented contract: the incoming side is treated as newer.
        main = MetricsRegistry()
        fam = main.gauge("breaker", label_names=("job",))
        fam.labels(job="0").set(2.0)
        other = MetricsRegistry()
        other.gauge("breaker", label_names=("job",)).labels(job="0").set(0.0)
        main.merge_from(other)
        assert fam.labels(job="0").value == 0.0


class TestMergedExport:
    def test_merged_registry_exports_cleanly(self):
        main = worker(10.0, "a")
        main.merge_from(worker(5.0, "b"))
        snap = main.snapshot()
        assert {e["labels"]["tenant"] for e in snap["fleet/bytes"]} == {"a", "b"}
        text = main.to_prometheus()
        assert 'fleet_bytes{tenant="a"} 10' in text
        assert 'fleet_bytes{tenant="b"} 5' in text

    def test_merge_is_associative_for_counters_and_histograms(self):
        def sample(seed):
            reg = MetricsRegistry()
            reg.counter("n").inc(seed)
            reg.histogram("h", buckets=(1.0, 2.0)).observe(seed * 0.5)
            return reg

        left = MetricsRegistry()
        for s in (1, 2, 3):
            left.merge_from(sample(s))
        mid = sample(2)
        mid.merge_from(sample(3))
        right = sample(1)
        right.merge_from(mid)
        assert left.counter("n").value == right.counter("n").value == 6
        lh = left.histogram("h", buckets=(1.0, 2.0))
        rh = right.histogram("h", buckets=(1.0, 2.0))
        assert lh.bucket_counts() == rh.bucket_counts()
        assert isinstance(lh, Histogram)
