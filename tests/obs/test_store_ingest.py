"""Backfill CLI: ``automdt store ingest BENCH_*.json`` + ``store info``."""

import json

from repro.harness.cli import main
from repro.obs.store import ResultsStore


def _write_bench(path, suite, schema=1, **values):
    report = {"bench": suite, "schema": schema}
    report.update(values)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_ingest_backfills_bench_reports(tmp_path, capsys):
    db = tmp_path / "store.db"
    a = _write_bench(tmp_path / "BENCH_alpha.json", "alpha", speedup=4.0, ok=True)
    b = _write_bench(tmp_path / "BENCH_beta.json", "beta", overhead=0.01)

    code = main(["store", "ingest", str(a), str(b), "--store", str(db)])
    assert code == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "beta" in out

    store = ResultsStore(db)
    assert store.counts()["runs"] == 2
    alpha = store.latest_bench("alpha")
    assert alpha is not None
    assert alpha.values == {"speedup": 4.0, "ok": 1.0}

    # Re-ingesting the same files is an idempotent no-op.
    assert main(["store", "ingest", str(a), str(b), "--store", str(db)]) == 0
    assert store.counts()["runs"] == 2


def test_ingest_rejects_unknown_schema(tmp_path, capsys):
    db = tmp_path / "store.db"
    bad = _write_bench(tmp_path / "BENCH_future.json", "future", schema=99, x=1.0)
    good = _write_bench(tmp_path / "BENCH_fine.json", "fine", x=1.0)

    code = main(["store", "ingest", str(bad), str(good), "--store", str(db)])
    assert code == 2  # any rejected file fails the command...
    err = capsys.readouterr().err
    assert "BenchSchemaError" in err and "99" in err
    # ...but valid files in the same invocation still land.
    assert ResultsStore(db).counts()["runs"] == 1


def test_ingest_rejects_missing_schema_field(tmp_path, capsys):
    db = tmp_path / "store.db"
    path = tmp_path / "BENCH_naked.json"
    path.write_text('{"bench": "naked", "x": 1.0}\n')
    assert main(["store", "ingest", str(path), "--store", str(db)]) == 2
    assert "BenchSchemaError" in capsys.readouterr().err
    assert ResultsStore(db).counts()["runs"] == 0


def test_store_info_lists_counts_and_recent_runs(tmp_path, capsys):
    db = tmp_path / "store.db"
    a = _write_bench(tmp_path / "BENCH_alpha.json", "alpha", speedup=4.0)
    assert main(["store", "ingest", str(a), "--store", str(db)]) == 0
    capsys.readouterr()

    assert main(["store", "info", "--store", str(db)]) == 0
    out = capsys.readouterr().out
    assert "schema v1" in out
    assert "runs" in out and "bench" in out
    assert "bench/alpha" in out


def test_repo_bench_artifacts_ingest_cleanly(tmp_path):
    """The five committed BENCH_*.json artifacts all carry a known schema."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    artifacts = sorted(repo_root.glob("BENCH_*.json"))
    assert len(artifacts) >= 5
    db = tmp_path / "store.db"
    code = main(["store", "ingest", *map(str, artifacts), "--store", str(db)])
    assert code == 0
    store = ResultsStore(db)
    assert store.counts()["runs"] == len(artifacts)
    suites = {row["scenario"] for row in store.runs(kind="bench")}
    assert {"dataplane", "fleet", "integrity", "parallel", "vectorized"} <= suites
