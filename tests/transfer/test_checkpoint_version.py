"""Checkpoint schema versioning: typed errors, graceful fresh-run fallback."""

import pytest

from repro import obs
from repro.transfer import TransferCheckpoint
from repro.transfer.supervisor import CHECKPOINT_VERSION
from repro.utils.errors import CheckpointVersionError

from tests.transfer.test_supervisor import make_engine
from repro.transfer import SupervisorConfig, TransferSupervisor


class TestVersionField:
    def test_serialized_with_current_version(self, tmp_path):
        checkpoint = TransferCheckpoint(bytes_completed=1e9, elapsed=10.0)
        blob = checkpoint.to_dict()
        assert blob["version"] == CHECKPOINT_VERSION
        checkpoint.save(tmp_path / "ckpt.json")
        loaded = TransferCheckpoint.load(tmp_path / "ckpt.json")
        assert loaded == checkpoint

    def test_preversion_checkpoint_reads_as_v1(self):
        # Checkpoints written before versioning carry no version field.
        loaded = TransferCheckpoint.from_dict(
            {"bytes_completed": 5.0, "elapsed": 1.0}
        )
        assert loaded.bytes_completed == 5.0

    def test_unknown_version_raises_typed_error(self):
        blob = TransferCheckpoint(bytes_completed=1.0, elapsed=1.0).to_dict()
        blob["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointVersionError):
            TransferCheckpoint.from_dict(blob)

    def test_version_checked_before_field_access(self):
        # Schema drift surfaces as the typed error, not a KeyError.
        with pytest.raises(CheckpointVersionError):
            TransferCheckpoint.from_dict({"version": 99})


class TestResumeFromPathFallback:
    def test_valid_checkpoint_resumes(self, tmp_path):
        path = tmp_path / "ckpt.json"
        TransferCheckpoint(bytes_completed=4e9, elapsed=30.0, threads=(13, 7, 5)).save(path)
        supervisor = TransferSupervisor(make_engine(), SupervisorConfig(seed=0))
        result = supervisor.resume_from_path(path)
        assert result.completed
        assert result.attempts[0].start_bytes == pytest.approx(4e9)

    def test_incompatible_checkpoint_falls_back_to_fresh(self, tmp_path):
        path = tmp_path / "ckpt.json"
        blob = TransferCheckpoint(bytes_completed=4e9, elapsed=30.0).to_dict()
        blob["version"] = 99
        import json

        path.write_text(json.dumps(blob))
        supervisor = TransferSupervisor(make_engine(), SupervisorConfig(seed=0))
        with obs.session(tmp_path / "obs") as sess:
            result = supervisor.resume_from_path(path)
            incidents = sess.registry.counter("supervisor/checkpoint_incompatible").value
        assert incidents == 1
        assert result.completed
        assert result.attempts[0].start_bytes == 0.0  # fresh, not resumed
