"""Probing, RPC channel and metrics helpers."""

import math

import numpy as np
import pytest

from repro.transfer import (
    BufferReportChannel,
    FaultEvent,
    RecoveryRecord,
    ThroughputProbe,
    TransferMetrics,
)

NAN = float("nan")


class TestThroughputProbe:
    def test_noiseless_passthrough(self):
        probe = ThroughputProbe()
        assert probe.observe((100.0, 200.0, 300.0)) == (100.0, 200.0, 300.0)

    def test_noise_changes_values_but_stays_close(self):
        probe = ThroughputProbe(noise_sigma=0.05, rng=0)
        measured = probe.observe((100.0, 100.0, 100.0))
        assert measured != (100.0, 100.0, 100.0)
        for v in measured:
            assert 50.0 <= v <= 150.0

    def test_noise_factors_bounded(self):
        probe = ThroughputProbe(noise_sigma=1.0, rng=0)  # huge sigma, clipped
        for _ in range(100):
            for v in probe.observe((100.0, 100.0, 100.0)):
                assert 50.0 <= v <= 150.0

    def test_smoothing_converges_to_constant_input(self):
        probe = ThroughputProbe(smoothing=0.5)
        out = None
        for _ in range(30):
            out = probe.observe((80.0, 80.0, 80.0))
        assert out[0] == pytest.approx(80.0, rel=1e-3)

    def test_smoothing_lags_step_change(self):
        probe = ThroughputProbe(smoothing=0.9)
        probe.observe((0.0, 0.0, 0.0))
        out = probe.observe((100.0, 100.0, 100.0))
        assert out[0] < 50.0

    def test_reset_clears_ewma(self):
        probe = ThroughputProbe(smoothing=0.9)
        probe.observe((100.0, 100.0, 100.0))
        probe.reset()
        assert probe.observe((0.0, 0.0, 0.0))[0] == 0.0

    def test_deterministic_by_seed(self):
        a = ThroughputProbe(noise_sigma=0.1, rng=5)
        b = ThroughputProbe(noise_sigma=0.1, rng=5)
        assert a.observe((10, 10, 10)) == b.observe((10, 10, 10))

    def test_nan_inputs_pass_through_without_raising(self):
        probe = ThroughputProbe(noise_sigma=0.05, rng=0)
        measured = probe.observe((NAN, 100.0, NAN))
        assert math.isnan(measured[0])
        assert math.isfinite(measured[1])
        assert math.isnan(measured[2])

    def test_nan_poisons_ewma_until_reset(self):
        # A dropout sample contaminates the smoothed estimate — by design the
        # probe reports honestly and controllers must sanitize (GuardedController
        # does); reset() is the engine's way to clear the contamination.
        probe = ThroughputProbe(smoothing=0.5)
        probe.observe((NAN, NAN, NAN))
        assert math.isnan(probe.observe((100.0, 100.0, 100.0))[0])
        probe.reset()
        assert probe.observe((100.0, 100.0, 100.0)) == (100.0, 100.0, 100.0)


class TestBufferReportChannel:
    def test_zero_delay_passthrough(self):
        chan = BufferReportChannel(delay=0)
        assert chan.exchange(42.0) == 42.0

    def test_one_interval_delay(self):
        chan = BufferReportChannel(delay=1, initial_value=0.0)
        assert chan.exchange(10.0) == 0.0
        assert chan.exchange(20.0) == 10.0

    def test_two_interval_delay(self):
        chan = BufferReportChannel(delay=2, initial_value=-1.0)
        assert chan.exchange(1.0) == -1.0
        assert chan.exchange(2.0) == -1.0
        assert chan.exchange(3.0) == 1.0

    def test_reset(self):
        chan = BufferReportChannel(delay=1)
        chan.exchange(5.0)
        chan.reset(initial_value=9.0)
        assert chan.exchange(1.0) == 9.0

    def test_reset_after_partial_drain(self):
        chan = BufferReportChannel(delay=3, initial_value=0.0)
        chan.exchange(1.0)
        chan.exchange(2.0)  # queue partially drained: two initials gone
        chan.reset(initial_value=7.0)
        assert chan.last_delivered == 7.0
        # The full delay applies again after the reset.
        assert chan.exchange(10.0) == 7.0
        assert chan.exchange(11.0) == 7.0
        assert chan.exchange(12.0) == 7.0
        assert chan.exchange(13.0) == 10.0

    def test_lost_report_repeats_stale_value(self):
        chan = BufferReportChannel(delay=1, initial_value=0.0)
        assert chan.exchange(10.0) == 0.0
        # The fresh report (20) is dropped in flight: nothing enters the
        # queue and the sender re-reads what it already had.
        assert chan.exchange(20.0, lost=True) == 0.0
        assert chan.exchange(30.0) == 10.0  # 20 never arrives

    def test_lost_with_zero_delay(self):
        chan = BufferReportChannel(delay=0, initial_value=5.0)
        assert chan.exchange(1.0) == 1.0
        assert chan.exchange(2.0, lost=True) == 1.0
        assert chan.exchange(3.0) == 3.0

    def test_last_delivered_tracks(self):
        chan = BufferReportChannel(delay=1, initial_value=0.0)
        assert chan.last_delivered == 0.0
        chan.exchange(4.0)
        assert chan.last_delivered == 0.0
        chan.exchange(5.0)
        assert chan.last_delivered == 4.0


class TestTransferMetrics:
    def make_metrics(self):
        m = TransferMetrics()
        for t in range(10):
            m.record(
                float(t + 1),
                throughputs=(100.0, 200.0, 150.0 + t),
                threads=(3, 4 + (t >= 5), 5),
                sender_usage=10.0,
                receiver_usage=20.0,
                utility=50.0,
                bytes_written_total=float(t) * 1e6,
            )
        return m

    def test_duration(self):
        assert self.make_metrics().duration == 10.0

    def test_average_throughput_warmup(self):
        m = self.make_metrics()
        assert m.average_throughput() == pytest.approx(np.mean([150 + t for t in range(10)]))
        assert m.average_throughput(warmup=6.0) > m.average_throughput()

    def test_effective_throughput(self):
        m = TransferMetrics()
        assert m.effective_throughput(1e9, 10.0) == pytest.approx(800.0)  # Mbps
        assert m.effective_throughput(1e9, 0.0) == 0.0

    def test_time_to_network_concurrency(self):
        m = self.make_metrics()
        assert m.time_to_network_concurrency(5, sustain=3) == 6.0

    def test_stability_lower_for_flat_series(self):
        m = self.make_metrics()
        assert m.stability("threads_write") == 0.0
        assert m.stability("threads_network") > 0.0

    def test_to_dict_roundtrippable(self):
        blob = self.make_metrics().to_dict()
        assert set(blob) >= {"throughput_read", "threads_network", "utility"}
        assert len(blob["utility"]["values"]) == 10

    def test_empty_metrics(self):
        m = TransferMetrics()
        assert m.duration == 0.0
        assert m.concurrency_cost() == 0.0


class TestIncidentRecords:
    def test_fault_event_time_to_detect(self):
        event = FaultEvent(kind="link_flap", t_onset=10.0, t_detected=15.0)
        assert event.time_to_detect == pytest.approx(5.0)

    def test_recovery_time_to_recover(self):
        record = RecoveryRecord(
            kind="link_flap",
            t_onset=10.0,
            t_detected=15.0,
            t_recovered=21.0,
            retries=1,
            goodput_lost_bytes=5e8,
        )
        assert record.time_to_recover == pytest.approx(11.0)

    def test_merge_from_stitches_series_and_incidents(self):
        first, second = TransferMetrics(), TransferMetrics()
        for t in (1.0, 2.0):
            first.record(
                t, throughputs=(1, 1, 1), threads=(1, 1, 1),
                sender_usage=0, receiver_usage=0, bytes_written_total=t,
            )
        for t in (3.0, 4.0):
            second.record(
                t, throughputs=(2, 2, 2), threads=(2, 2, 2),
                sender_usage=0, receiver_usage=0, bytes_written_total=t,
            )
        second.record_fault(FaultEvent("stall", 2.5, 3.0))
        first.merge_from(second)
        assert list(first.bytes_written.times) == [1.0, 2.0, 3.0, 4.0]
        assert len(first.fault_events) == 1

    def test_to_dict_includes_incidents(self):
        m = TransferMetrics()
        m.record_fault(FaultEvent("link_flap", 1.0, 2.0))
        m.record_recovery(RecoveryRecord("link_flap", 1.0, 2.0, 4.0, 1, 0.0))
        blob = m.to_dict()
        assert blob["fault_events"][0]["kind"] == "link_flap"
        assert blob["recoveries"][0]["t_recovered"] == 4.0

    def test_fault_event_dict_round_trip(self):
        event = FaultEvent("link_flap", 10.0, 15.5)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_recovery_record_dict_round_trip(self):
        record = RecoveryRecord("stall", 10.0, 15.5, 21.25, 2, 5e8)
        assert RecoveryRecord.from_dict(record.to_dict()) == record

    def test_metrics_dict_round_trip_survives_json(self):
        import json

        m = TransferMetrics()
        for t in (1.0, 2.0):
            m.record(
                t, throughputs=(1.5, 2.5, 3.5), threads=(1, 2, 3),
                sender_usage=0.1, receiver_usage=0.2,
                utility=0.5, bytes_written_total=t * 1e9,
            )
        m.record_fault(FaultEvent("link_flap", 1.0, 2.0))
        m.record_recovery(RecoveryRecord("link_flap", 1.0, 2.0, 4.0, 1, 1e8))
        rebuilt = TransferMetrics.from_dict(json.loads(json.dumps(m.to_dict())))
        assert list(rebuilt.throughput_write.values) == list(m.throughput_write.values)
        assert list(rebuilt.utility.times) == [1.0, 2.0]
        assert rebuilt.fault_events == m.fault_events
        assert rebuilt.recoveries == m.recoveries

    def test_from_dict_tolerates_partial_blob(self):
        rebuilt = TransferMetrics.from_dict(
            {"throughput_write": {"name": "throughput_write",
                                  "times": [0.0], "values": [100.0]}}
        )
        assert len(rebuilt.throughput_write) == 1
        assert len(rebuilt.threads_read) == 0
        assert rebuilt.fault_events == [] and rebuilt.recoveries == []
