"""Transfer tracing: recorder, loader, summaries."""

import json

import pytest

from repro.baselines import StaticController
from repro.emulator import Testbed, fig5_read_bottleneck
from repro.emulator import testbed_for_optimal as calibrated_testbed
from repro.transfer import (
    EngineConfig,
    ModularTransferEngine,
    TraceRecorder,
    load_trace,
    summarize_trace,
)
from repro.transfer.files import uniform_dataset


class TestTraceRecorder:
    def run_traced(self, tmp_path, controller=None):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(controller or StaticController((13, 7, 5)), path)
        engine = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0),
            uniform_dataset(3, 1e9),
            recorder,
            EngineConfig(max_seconds=300),
        )
        result = engine.run()
        recorder.close()
        return path, result

    def test_one_record_per_decision(self, tmp_path):
        path, result = self.run_traced(tmp_path)
        records = load_trace(path)
        assert len(records) == len(result.metrics.throughput_read)

    def test_record_schema(self, tmp_path):
        path, _ = self.run_traced(tmp_path)
        record = load_trace(path)[0]
        assert set(record) == {
            "type", "t", "threads_before", "throughputs", "sender_free",
            "receiver_free", "bytes_written", "decision",
        }
        assert record["type"] == "decision"
        assert record["decision"] == [13, 7, 5]

    def test_valid_jsonl(self, tmp_path):
        path, _ = self.run_traced(tmp_path)
        for line in path.read_text().strip().splitlines():
            json.loads(line)

    def test_reset_appends(self, tmp_path):
        # Resume-safety: a second engine run through the same recorder
        # extends the trace instead of erasing the first run's records.
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(StaticController((2, 2, 2)), path)
        counts = []
        for _ in range(2):
            engine = ModularTransferEngine(
                Testbed(fig5_read_bottleneck(), rng=0),
                uniform_dataset(1, 5e8),
                recorder,
                EngineConfig(max_seconds=120),
            )
            engine.run()
            recorder.flush()
            counts.append(len(load_trace(path)))
        recorder.close()
        assert counts[1] == 2 * counts[0]
        # The resume boundary is visible as a time reset mid-file.
        records = load_trace(path)
        assert records[counts[0]]["t"] == 0.0
        assert records[counts[0] - 1]["t"] > 0.0

    def test_truncate_discards_history(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(StaticController((2, 2, 2)), path)
        for i in range(2):
            engine = ModularTransferEngine(
                Testbed(fig5_read_bottleneck(), rng=0),
                uniform_dataset(1, 5e8),
                recorder,
                EngineConfig(max_seconds=120),
            )
            if i == 1:
                recorder.truncate()
            engine.run()
        recorder.close()
        records = load_trace(path)
        # Only the second run's records survive the explicit truncate.
        assert records[0]["t"] == 0.0
        assert sum(1 for r in records if r["t"] == 0.0) == 1

    def test_context_manager(self, tmp_path):
        path = tmp_path / "cm.jsonl"
        with TraceRecorder(StaticController((1, 1, 1)), path) as recorder:
            from repro.transfer.engine import Observation

            obs = Observation((1, 1, 1), (0, 0, 0), 1, 1, 1, 1, 0.0, 0.0)
            recorder.propose(obs)
        assert len(load_trace(path)) == 1


class TestLoadTraceEdgeCases:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_trace(path) == []

    def test_truncated_final_line_dropped(self, tmp_path):
        path, _ = TestTraceRecorder().run_traced(tmp_path)
        full = load_trace(path)
        # Simulate a process killed mid-append: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        assert len(load_trace(path)) == len(full) - 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path, _ = TestTraceRecorder().run_traced(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:5]  # damage an interior line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_filters_non_decision_records(self, tmp_path):
        path, _ = TestTraceRecorder().run_traced(tmp_path)
        n = len(load_trace(path))
        with path.open("a") as fh:
            fh.write('{"type":"metric","name":"x","t":1.0,"value":2.0}\n')
        assert len(load_trace(path)) == n

    def test_legacy_records_without_type(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"t":0.0,"decision":[1,1,1],"throughputs":[0,0,0]}\n'
        )
        records = load_trace(path)
        assert len(records) == 1 and records[0]["decision"] == [1, 1, 1]


class TestSummarizeTrace:
    def test_summary_fields(self, tmp_path):
        recorder = TraceRecorder(StaticController((13, 7, 5)), tmp_path / "t.jsonl")
        engine = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0),
            uniform_dataset(3, 1e9),
            recorder,
            EngineConfig(max_seconds=300),
        )
        engine.run()
        recorder.close()
        summary = summarize_trace(load_trace(tmp_path / "t.jsonl"))
        assert summary.mean_threads == (13.0, 7.0, 5.0)
        assert summary.mean_total_threads == 25.0
        assert summary.decision_changes == 0
        assert summary.churn == 0.0

    def test_churn_counts_changes(self):
        records = [
            {"t": float(i), "decision": [1 + (i % 2), 1, 1], "throughputs": [0, 0, 0]}
            for i in range(5)
        ]
        summary = summarize_trace(records)
        assert summary.decision_changes == 4
        assert summary.churn == 1.0

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.decisions == 0
        assert summary.churn == 0.0


class TestCalibration:
    def test_round_trip_optimal(self):
        cfg = calibrated_testbed((13, 7, 5), 1000.0)
        assert cfg.optimal_threads() == (13, 7, 5)

    def test_arbitrary_triples(self):
        for triple in [(1, 1, 1), (20, 3, 9), (5, 14, 6)]:
            cfg = calibrated_testbed(triple, 2500.0)
            assert cfg.optimal_threads() == triple

    def test_headroom_moves_bottleneck_to_network(self):
        cfg = calibrated_testbed((10, 10, 10), 1000.0, headroom=1.5)
        assert cfg.bottleneck_bandwidth == pytest.approx(1000.0)
        assert cfg.source.bandwidth > 1000.0

    def test_runs_on_testbed(self):
        cfg = calibrated_testbed((4, 8, 2), 800.0)
        tb = Testbed(cfg, rng=0)
        flows = [tb.advance((4, 8, 2)) for _ in range(5)][-1]
        assert flows.throughput_write == pytest.approx(800.0, rel=0.1)

    def test_invalid_inputs(self):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError):
            calibrated_testbed((0, 1, 1), 1000.0)
        with pytest.raises(ConfigError):
            calibrated_testbed((1, 1), 1000.0)
