"""Satellite: stall → checkpoint → resume → stall again.

Two independent outage windows hit one supervised transfer.  Both
incidents must be detected, attributed to the injected fault kind, and
recovered — and the stitched byte accounting must not double-count: each
resumed attempt starts exactly where the previous one left off, and the
per-attempt deltas sum to the dataset size exactly once.
"""

import pytest

from repro.emulator import FaultSchedule, LinkFlap
from repro.transfer import SupervisorConfig, TransferSupervisor

from tests.transfer.test_supervisor import make_engine


def double_stall_engine():
    return make_engine(
        FaultSchedule([
            LinkFlap(start=10.0, duration=8.0),
            LinkFlap(start=50.0, duration=8.0),
        ]),
        max_seconds=600.0,
        gigabytes=6,
    )


@pytest.fixture(scope="module")
def result():
    return TransferSupervisor(double_stall_engine(), SupervisorConfig(seed=0)).run()


class TestDoubleStallAttribution:
    def test_completes_across_both_outages(self, result):
        assert result.completed
        assert result.retries_used >= 2
        assert result.attempts[-1].outcome == "completed"

    def test_both_incidents_detected_and_attributed(self, result):
        events = result.metrics.fault_events
        assert len(events) == 2
        assert all(e.kind == "link_flap" for e in events)
        # Two *separate* incidents, one per outage window, in order.
        first, second = events
        assert first.t_onset < second.t_onset
        assert first.t_detected <= 10.0 + 8.0 + 10.0  # detected near window one
        assert second.t_onset >= 45.0  # attributed to window two, not a re-report

    def test_both_incidents_recovered(self, result):
        recoveries = result.metrics.recoveries
        assert len(recoveries) == 2
        assert [r.kind for r in recoveries] == ["link_flap", "link_flap"]
        assert recoveries[0].t_recovered <= recoveries[1].t_onset

    def test_no_double_count_across_resume_boundaries(self, result):
        # Each resumed attempt starts at the previous durable byte count …
        for earlier, later in zip(result.attempts, result.attempts[1:]):
            assert later.start_bytes == pytest.approx(earlier.end_bytes)
        # … so the per-attempt deltas tile the dataset exactly once.
        assert sum(a.bytes_transferred for a in result.attempts) == pytest.approx(
            result.total_bytes, rel=1e-6
        )
        assert result.metrics.bytes_written.last == pytest.approx(
            result.total_bytes, rel=1e-6
        )

    def test_stitched_timeline_is_monotonic(self, result):
        times = list(result.metrics.bytes_written.times)
        assert times == sorted(times)
        values = list(result.metrics.bytes_written.values)
        assert all(b >= a - 0.5 for a, b in zip(values, values[1:]))


class TestExplicitCheckpointBoundary:
    def test_second_stall_attributed_after_manual_resume(self):
        # Supervisor A gives up after the first stall (max_retries=0); a new
        # supervisor resumes from its checkpoint and must attribute the
        # *second* stall correctly without re-counting the first's bytes.
        first = TransferSupervisor(
            double_stall_engine(), SupervisorConfig(seed=0, max_retries=0)
        ).run()
        assert not first.completed
        assert len(first.metrics.fault_events) == 1
        checkpoint = first.last_checkpoint
        assert checkpoint is not None and checkpoint.bytes_completed > 0

        second = TransferSupervisor(
            double_stall_engine(), SupervisorConfig(seed=1)
        ).run(resume_from=checkpoint)
        assert second.completed
        assert second.attempts[0].start_bytes == pytest.approx(
            checkpoint.bytes_completed
        )
        events = second.metrics.fault_events
        assert all(e.kind == "link_flap" for e in events)
        assert all(e.t_onset > checkpoint.elapsed for e in events)
        # Resumed side only moves the remaining bytes: no double count.
        assert sum(a.bytes_transferred for a in second.attempts) == pytest.approx(
            second.total_bytes - checkpoint.bytes_completed, rel=1e-6
        )
