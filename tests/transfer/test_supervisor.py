"""Supervisor: stall detection, backoff, checkpoint-resume, incident records."""

import math

import pytest

from repro.baselines import StaticController
from repro.emulator import (
    FaultSchedule,
    LinkFlap,
    NetworkConfig,
    StorageConfig,
    Testbed,
    TestbedConfig,
)
from repro.transfer import (
    EngineConfig,
    ModularTransferEngine,
    Observation,
    SupervisorConfig,
    TransferCheckpoint,
    TransferSupervisor,
)
from repro.transfer.files import uniform_dataset
from repro.transfer.supervisor import _StallDetector
from repro.utils.errors import ConfigError
from repro.utils.units import GiB


def make_engine(faults=None, *, max_seconds=240.0, gigabytes=5):
    testbed = Testbed(
        TestbedConfig(
            source=StorageConfig(tpt=80, bandwidth=1000),
            destination=StorageConfig(tpt=200, bandwidth=1000),
            network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
            sender_buffer_capacity=1.0 * GiB,
            receiver_buffer_capacity=1.0 * GiB,
            max_threads=30,
        ),
        rng=0,
        faults=faults,
    )
    return ModularTransferEngine(
        testbed,
        uniform_dataset(gigabytes, 1e9),
        StaticController((13, 7, 5)),
        EngineConfig(max_seconds=max_seconds, seed=0),
    )


class TestSupervisorConfig:
    def test_defaults_valid(self):
        SupervisorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stall_intervals": 0},
            {"min_progress_bytes": 0.0},
            {"max_retries": -1},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.0},
            {"backoff_max": 0.0},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisorConfig(**kwargs)


def obs(elapsed, written):
    return Observation(
        threads=(1, 1, 1),
        throughputs=(0.0, 0.0, 0.0),
        sender_free=1.0,
        receiver_free=1.0,
        sender_capacity=1.0,
        receiver_capacity=1.0,
        elapsed=elapsed,
        bytes_written_total=written,
    )


class TestStallDetector:
    def test_progress_keeps_running(self):
        det = _StallDetector(stall_intervals=3, min_progress_bytes=1.0)
        for t in range(10):
            assert det(obs(float(t), t * 100.0))
        assert det.detected_at is None

    def test_detects_after_n_stagnant_intervals(self):
        det = _StallDetector(stall_intervals=3, min_progress_bytes=1.0)
        assert det(obs(0.0, 0.0))
        assert det(obs(1.0, 500.0))
        assert det(obs(2.0, 500.0))  # stagnant 1
        assert det(obs(3.0, 500.0))  # stagnant 2
        assert not det(obs(4.0, 500.0))  # stagnant 3 → abort
        assert det.detected_at == 4.0
        assert det.progress_stopped_at == 1.0
        assert det.last_good_rate == pytest.approx(500.0)

    def test_progress_resets_the_counter(self):
        det = _StallDetector(stall_intervals=3, min_progress_bytes=1.0)
        det(obs(0.0, 0.0))
        det(obs(1.0, 0.0))
        det(obs(2.0, 0.0))
        assert det(obs(3.0, 100.0))  # progress: counter back to zero
        assert det(obs(4.0, 100.0))
        assert det(obs(5.0, 100.0))
        assert not det(obs(6.0, 100.0))


class TestCheckpoint:
    def test_dict_roundtrip(self):
        cp = TransferCheckpoint(
            bytes_completed=1.5e9, elapsed=42.0, threads=(3, 4, 5), attempt=2
        )
        assert TransferCheckpoint.from_dict(cp.to_dict()) == cp

    def test_file_roundtrip(self, tmp_path):
        cp = TransferCheckpoint(bytes_completed=2e9, elapsed=10.0)
        path = tmp_path / "transfer.ckpt.json"
        cp.save(path)
        assert TransferCheckpoint.load(path) == cp


class TestHealthyTransfer:
    def test_single_attempt_no_incidents(self):
        result = TransferSupervisor(make_engine(), SupervisorConfig(seed=0)).run()
        assert result.completed
        assert not result.timed_out
        assert result.retries_used == 0
        assert len(result.attempts) == 1
        assert result.attempts[0].outcome == "completed"
        assert result.metrics.fault_events == []
        assert result.metrics.recoveries == []
        assert result.last_checkpoint is None
        assert result.effective_throughput > 0

    def test_budget_exhaustion_is_timed_out_not_stalled(self):
        result = TransferSupervisor(
            make_engine(max_seconds=3.0), SupervisorConfig(seed=0)
        ).run()
        assert not result.completed
        assert result.timed_out
        assert result.retries_used == 0
        assert result.attempts[0].outcome == "timed_out"
        assert result.last_checkpoint is not None


class TestRecoveryFromLinkFlap:
    def run_supervised(self, seed=0):
        engine = make_engine(FaultSchedule([LinkFlap(start=10.0, duration=8.0)]))
        return TransferSupervisor(engine, SupervisorConfig(seed=seed)).run()

    def test_completes_with_retry(self):
        result = self.run_supervised()
        assert result.completed
        assert result.retries_used >= 1
        assert result.attempts[0].outcome == "stalled"
        assert result.attempts[-1].outcome == "completed"

    def test_resume_does_not_rewind_progress(self):
        result = self.run_supervised()
        for earlier, later in zip(result.attempts, result.attempts[1:]):
            assert later.start_bytes == pytest.approx(earlier.end_bytes)
            assert later.start_time > earlier.end_time  # backoff advanced the clock

    def test_incident_is_detected_and_recovered(self):
        result = self.run_supervised()
        assert len(result.metrics.fault_events) == 1
        event = result.metrics.fault_events[0]
        assert event.kind == "link_flap"
        assert event.time_to_detect > 0
        assert len(result.metrics.recoveries) == 1
        recovery = result.metrics.recoveries[0]
        assert recovery.time_to_recover >= event.time_to_detect
        assert recovery.goodput_lost_bytes > 0
        assert recovery.retries >= 1

    def test_metrics_are_stitched_across_attempts(self):
        result = self.run_supervised()
        times = list(result.metrics.bytes_written.times)
        assert times == sorted(times)
        assert math.isclose(
            result.metrics.bytes_written.last, result.total_bytes, rel_tol=1e-6
        )

    def test_deterministic_given_seed(self):
        a, b = self.run_supervised(seed=3), self.run_supervised(seed=3)
        assert a.completion_time == b.completion_time
        assert a.attempts == b.attempts


class TestPermanentOutage:
    def run_supervised(self, max_retries=3):
        # requires_restart=False keeps this a pure availability outage: the
        # path is down for the whole budget no matter how often we restart.
        engine = make_engine(
            FaultSchedule([LinkFlap(start=5.0, duration=1e4, requires_restart=False)])
        )
        return TransferSupervisor(
            engine, SupervisorConfig(seed=0, max_retries=max_retries)
        ).run()

    def test_retries_are_bounded(self):
        result = self.run_supervised(max_retries=3)
        assert not result.completed
        assert result.retries_used == 3
        assert len(result.attempts) == 4  # initial + 3 retries
        assert all(a.outcome == "stalled" for a in result.attempts)
        assert result.last_checkpoint is not None

    def test_backoff_delays_grow(self):
        result = self.run_supervised(max_retries=3)
        gaps = [
            later.start_time - earlier.end_time
            for earlier, later in zip(result.attempts, result.attempts[1:])
        ]
        # delays follow min(60, 2 * 2**(k-1)) with ±25 % jitter: strictly
        # increasing because each band's floor exceeds the previous ceiling.
        assert all(b > a for a, b in zip(gaps, gaps[1:]))
        assert 1.5 <= gaps[0] <= 2.5
        assert 3.0 <= gaps[1] <= 5.0


class TestExplicitResume:
    def test_resume_skips_completed_bytes(self):
        engine = make_engine()
        checkpoint = TransferCheckpoint(bytes_completed=3e9, elapsed=0.0)
        result = TransferSupervisor(engine, SupervisorConfig(seed=0)).run(
            resume_from=checkpoint
        )
        assert result.completed
        assert result.total_bytes == 5e9
        # Only the remaining 2 GB were read from the source.
        assert engine.testbed.total_read == pytest.approx(2e9, rel=1e-6)

    def test_resume_is_faster_than_full_run(self):
        full = TransferSupervisor(make_engine(), SupervisorConfig(seed=0)).run()
        resumed = TransferSupervisor(make_engine(), SupervisorConfig(seed=0)).run(
            resume_from=TransferCheckpoint(bytes_completed=4e9, elapsed=0.0)
        )
        assert resumed.completion_time < full.completion_time
