"""File-level (chunk-granular) transfer engine."""

import numpy as np
import pytest

from repro.baselines import StaticController
from repro.emulator import NetworkConfig, StorageConfig, TestbedConfig
from repro.emulator.presets import fig5_read_bottleneck
from repro.transfer import FileLevelConfig, FileLevelEngine
from repro.transfer.files import Dataset, FileSpec, uniform_dataset
from repro.utils.units import GiB


def run(dataset, threads=(13, 7, 5), config=None, testbed=None):
    return FileLevelEngine(
        testbed or fig5_read_bottleneck(), dataset, StaticController(threads), config
    ).run()


class TestBasics:
    def test_completes_and_accounts_bytes(self):
        result = run(uniform_dataset(10, 1e9))
        assert result.completed
        assert result.total_bytes == 10e9
        assert result.metrics.bytes_written.last == pytest.approx(10e9, rel=1e-6)

    def test_all_files_get_completion_times(self):
        result = run(uniform_dataset(10, 1e9))
        assert np.isfinite(result.file_completion_times).all()
        assert len(result.file_completion_times) == 10

    def test_files_complete_in_order(self):
        result = run(uniform_dataset(8, 1e9))
        times = result.file_completion_times
        assert (np.diff(times) >= -1e-9).all()

    def test_effective_throughput_positive(self):
        result = run(uniform_dataset(10, 1e9))
        assert 0 < result.effective_throughput <= 1000.0 * 1.05

    def test_latency_quantiles_monotone(self):
        result = run(uniform_dataset(20, 5e8))
        q = result.file_latency_quantiles((0.1, 0.5, 0.9))
        assert q[0.1] <= q[0.5] <= q[0.9]

    def test_deterministic(self):
        a = run(uniform_dataset(5, 1e9))
        b = run(uniform_dataset(5, 1e9))
        assert a.completion_time == b.completion_time


class TestConsistencyWithFluidModel:
    def test_steady_state_throughput_matches_testbed(self):
        """With files >> workers the mid-transfer write throughput matches
        the fluid model's bottleneck rate within a few percent."""
        result = run(uniform_dataset(200, 2.5e8))  # 50 GB in 200 files
        mid = result.metrics.throughput_write.mean(
            t_start=30.0, t_end=result.completion_time * 0.7
        )
        assert mid == pytest.approx(1000.0, rel=0.08)

    def test_straggler_tail_with_few_large_files(self):
        """With few huge files the tail drains at per-stream speed — the
        effect that motivates intra-file parallelism in related work."""
        few = run(uniform_dataset(14, 2e9))  # 28 GB in 14 files (13 readers)
        many = run(uniform_dataset(280, 1e8))  # same bytes, 280 files
        assert few.effective_throughput < many.effective_throughput


class TestDynamics:
    def test_small_files_pay_open_costs(self):
        testbed = TestbedConfig(
            source=StorageConfig(tpt=80, bandwidth=1000, per_file_cost=0.2),
            destination=StorageConfig(tpt=200, bandwidth=1000),
            network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
            sender_buffer_capacity=1 * GiB,
            receiver_buffer_capacity=1 * GiB,
            max_threads=30,
        )
        # Same bytes, file counts well above concurrency on both sides and
        # per-file tails kept small, so the open-cost effect is isolated:
        # a 10 MB file pays 0.2 s of open per ~1 s of streaming, a 100 MB
        # file pays it per ~10 s.
        small = run(uniform_dataset(3000, 1e7), testbed=testbed)  # 30 GB, 10 MB files
        large = run(uniform_dataset(300, 1e8), testbed=testbed)  # 30 GB, 100 MB files
        assert small.effective_throughput < large.effective_throughput

    def test_bounded_sender_buffer_limits_runahead(self):
        testbed = TestbedConfig(
            source=StorageConfig(tpt=200, bandwidth=2000),  # fast reader
            destination=StorageConfig(tpt=50, bandwidth=500),  # slow writer
            network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
            sender_buffer_capacity=0.2 * GiB,
            receiver_buffer_capacity=0.2 * GiB,
            max_threads=30,
        )
        result = run(uniform_dataset(20, 5e8), threads=(10, 6, 10), testbed=testbed)
        # Sender occupancy never exceeds its capacity.
        assert result.metrics.sender_usage.max() <= 0.2 * GiB * 1.001

    def test_controller_concurrency_changes_apply(self):
        class Ramp:
            def __init__(self):
                self.calls = 0

            def propose(self, obs):
                self.calls += 1
                return (13, 7, 5) if obs.elapsed > 10 else (2, 2, 2)

            def reset(self):
                pass

        engine = FileLevelEngine(fig5_read_bottleneck(), uniform_dataset(10, 1e9), Ramp())
        result = engine.run()
        m = result.metrics
        early = m.throughput_write.mean(t_start=3, t_end=10)
        late = m.throughput_write.mean(t_start=20, t_end=60)
        assert late > early

    def test_max_seconds_cap(self):
        result = run(
            uniform_dataset(100, 1e9),
            config=FileLevelConfig(max_seconds=20.0),
        )
        assert not result.completed
        assert result.completion_time <= 25.0

    def test_tiny_dataset_single_file(self):
        result = run(Dataset([FileSpec("one", 1e8)]))
        assert result.completed
        assert result.file_completion_times[0] == pytest.approx(result.completion_time, rel=0.2)
