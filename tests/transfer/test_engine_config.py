"""EngineConfig and TransferResult edge-case validation."""

import pytest

from repro.transfer.engine import EngineConfig, TransferResult
from repro.transfer.metrics import TransferMetrics
from repro.utils.errors import ConfigError


class TestEngineConfig:
    def test_defaults(self):
        cfg = EngineConfig()
        assert cfg.decision_interval == 1.0
        assert cfg.rpc_delay == 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("decision_interval", 0.0),
            ("max_seconds", -1.0),
            ("probe_noise", -0.1),
            ("rpc_delay", -1),
            ("probe_smoothing", -0.1),
            ("probe_smoothing", 1.5),
            ("probe_smoothing", 1.0),  # EWMA weight 1.0 would never update
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ConfigError):
            EngineConfig(**{field: value})

    def test_probe_smoothing_bounds_accepted(self):
        assert EngineConfig(probe_smoothing=0.0).probe_smoothing == 0.0
        assert EngineConfig(probe_smoothing=0.99).probe_smoothing == 0.99

    def test_seed_not_in_equality(self):
        assert EngineConfig(seed=1) == EngineConfig(seed=2)


class TestTransferResult:
    def test_effective_throughput(self):
        result = TransferResult(
            completed=True,
            completion_time=10.0,
            total_bytes=1e9,
            metrics=TransferMetrics(),
        )
        assert result.effective_throughput == pytest.approx(800.0)

    def test_zero_time_guard(self):
        result = TransferResult(
            completed=False,
            completion_time=0.0,
            total_bytes=1e9,
            metrics=TransferMetrics(),
        )
        assert result.effective_throughput == 0.0

    def test_status_flag_defaults(self):
        result = TransferResult(
            completed=True,
            completion_time=10.0,
            total_bytes=1e9,
            metrics=TransferMetrics(),
        )
        assert not result.timed_out
        assert not result.aborted


class TestTimeoutSemantics:
    def make_engine(self, max_seconds):
        from repro.baselines import StaticController
        from repro.emulator import NetworkConfig, StorageConfig, Testbed, TestbedConfig
        from repro.transfer.engine import ModularTransferEngine
        from repro.transfer.files import uniform_dataset
        from repro.utils.units import GiB

        testbed = Testbed(
            TestbedConfig(
                source=StorageConfig(tpt=80, bandwidth=1000),
                destination=StorageConfig(tpt=200, bandwidth=1000),
                network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
                sender_buffer_capacity=1.0 * GiB,
                receiver_buffer_capacity=1.0 * GiB,
                max_threads=30,
            ),
            rng=0,
        )
        return ModularTransferEngine(
            testbed,
            uniform_dataset(5, 1e9),
            StaticController((13, 7, 5)),
            EngineConfig(max_seconds=max_seconds),
        )

    def test_timed_out_set_on_budget_exhaustion(self):
        engine = self.make_engine(max_seconds=3.0)
        result = engine.run()
        assert not result.completed
        assert result.timed_out
        assert not result.aborted

    def test_final_observation_marked_done_on_timeout(self):
        engine = self.make_engine(max_seconds=3.0)
        engine.run()
        assert engine.last_observation is not None
        assert engine.last_observation.done

    def test_completed_run_not_timed_out(self):
        engine = self.make_engine(max_seconds=600.0)
        result = engine.run()
        assert result.completed
        assert not result.timed_out
        assert engine.last_observation.done
