"""EngineConfig and TransferResult edge-case validation."""

import pytest

from repro.transfer.engine import EngineConfig, TransferResult
from repro.transfer.metrics import TransferMetrics
from repro.utils.errors import ConfigError


class TestEngineConfig:
    def test_defaults(self):
        cfg = EngineConfig()
        assert cfg.decision_interval == 1.0
        assert cfg.rpc_delay == 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("decision_interval", 0.0),
            ("max_seconds", -1.0),
            ("probe_noise", -0.1),
            ("rpc_delay", -1),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ConfigError):
            EngineConfig(**{field: value})

    def test_seed_not_in_equality(self):
        assert EngineConfig(seed=1) == EngineConfig(seed=2)


class TestTransferResult:
    def test_effective_throughput(self):
        result = TransferResult(
            completed=True,
            completion_time=10.0,
            total_bytes=1e9,
            metrics=TransferMetrics(),
        )
        assert result.effective_throughput == pytest.approx(800.0)

    def test_zero_time_guard(self):
        result = TransferResult(
            completed=False,
            completion_time=0.0,
            total_bytes=1e9,
            metrics=TransferMetrics(),
        )
        assert result.effective_throughput == 0.0
