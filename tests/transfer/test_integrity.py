"""End-to-end integrity: manifest, journal, ledger, verified resume/repair."""

import pytest

from repro.baselines import StaticController
from repro.emulator import (
    DataCorruption,
    FaultSchedule,
    NetworkConfig,
    SilentTruncation,
    StorageConfig,
    Testbed,
    TestbedConfig,
    TornWrite,
)
from repro.transfer import (
    ChunkJournal,
    DestinationLedger,
    EngineConfig,
    IntegrityConfig,
    ModularTransferEngine,
    SupervisorConfig,
    TransferManifest,
    TransferSupervisor,
    VerifiedTransfer,
    verify_artifacts,
)
from repro.transfer.files import uniform_dataset
from repro.utils.errors import IntegrityError
from repro.utils.units import GiB


def make_supervisor(faults=None, *, max_seconds=240.0, gigabytes=2):
    testbed = Testbed(
        TestbedConfig(
            source=StorageConfig(tpt=80, bandwidth=1000),
            destination=StorageConfig(tpt=200, bandwidth=1000),
            network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
            sender_buffer_capacity=1.0 * GiB,
            receiver_buffer_capacity=1.0 * GiB,
            max_threads=30,
        ),
        rng=0,
        faults=faults,
    )
    engine = ModularTransferEngine(
        testbed,
        uniform_dataset(gigabytes, 1e9),
        StaticController((13, 7, 5)),
        EngineConfig(max_seconds=max_seconds, seed=0),
    )
    return TransferSupervisor(engine, SupervisorConfig(seed=0))


def make_manifest(*, files=2, size=1e9, chunk_size=0.25e9, **kwargs):
    return TransferManifest(
        "ds", tuple((f"f{i:02d}", size) for i in range(files)), chunk_size, **kwargs
    )


class TestManifest:
    def test_chunking_covers_dataset(self):
        manifest = make_manifest(files=3, size=1e9, chunk_size=0.3e9)
        assert len(manifest) == 3 * 4  # ceil(1e9 / 0.3e9) = 4 per file
        assert manifest.total_bytes == pytest.approx(3e9)
        last = manifest.chunks[3]  # final chunk of the first file
        assert last.size == pytest.approx(1e9 - 3 * 0.3e9)

    def test_deterministic_and_seed_sensitive(self):
        assert make_manifest().expected() == make_manifest().expected()
        assert make_manifest().expected() != make_manifest(content_seed=1).expected()

    def test_roundtrip(self, tmp_path):
        manifest = make_manifest(algorithm="xxh32", content_seed=3)
        manifest.save(tmp_path / "manifest.json")
        loaded = TransferManifest.load(tmp_path / "manifest.json")
        assert loaded.expected() == manifest.expected()
        assert loaded.algorithm == "xxh32"

    def test_tampered_manifest_fails_loudly(self, tmp_path):
        manifest = make_manifest()
        blob = manifest.to_dict()
        blob["chunks"][0][5] ^= 1  # flip a digest bit
        with pytest.raises(IntegrityError):
            TransferManifest.from_dict(blob)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            make_manifest(algorithm="md5")


class TestJournal:
    def test_replay_last_record_wins(self, tmp_path):
        with ChunkJournal(tmp_path / "j.jsonl") as journal:
            journal.record(0, 111, 1.0)
            journal.record(1, 222, 2.0)
            journal.record(0, 333, 3.0)  # re-send supersedes
        journal = ChunkJournal(tmp_path / "j.jsonl")
        assert journal.replay() == {0: 333, 1: 222}
        journal.close()

    def test_missing_file_means_no_claims(self, tmp_path):
        journal = ChunkJournal(tmp_path / "never-written.jsonl")
        assert journal.replay() == {}

    def test_crash_loses_unflushed_buffer(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1000)
        journal.record(0, 111, 1.0)
        journal.flush()
        journal.record(1, 222, 2.0)  # buffered, never flushed
        journal.crash()
        assert ChunkJournal(tmp_path / "j.jsonl").replay() == {0: 111}

    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1)
        journal.record(0, 111, 1.0)
        journal.crash(torn_tail=True)
        resumed = ChunkJournal(tmp_path / "j.jsonl", flush_every=1)
        assert resumed.replay() == {0: 111}  # torn fragment dropped
        resumed.record(1, 222, 2.0)  # post-recovery append lands cleanly
        resumed.close()
        assert ChunkJournal(tmp_path / "j.jsonl").replay() == {0: 111, 1: 222}

    def test_replay_idempotent(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1)
        for i in range(10):
            journal.record(i, i * 7, float(i))
        journal.crash(torn_tail=True)
        journal = ChunkJournal(tmp_path / "j.jsonl")
        first = journal.replay()
        assert journal.replay() == first
        assert journal.replay() == first


class TestLedger:
    def test_sync_maps_bytes_to_chunks_in_order(self):
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        assert ledger.sync(0.3e9, 1.0) == [(0, manifest.chunks[0].digest)]
        assert ledger.status_counts() == {"ok": 1, "missing": 3}
        assert ledger.status[0] == "ok" and ledger.status[1] == "missing"
        done = ledger.sync(1e9, 2.0)
        assert [cid for cid, _ in done] == [1, 2, 3]
        assert ledger.verify() == []
        assert ledger.verified_bytes == pytest.approx(1e9)

    def test_stale_observation_ignored(self):
        ledger = DestinationLedger(make_manifest())
        ledger.begin_pass(list(range(8)), start_bytes=0.0)
        ledger.sync(0.5e9, 1.0)
        assert ledger.sync(0.4e9, 2.0) == []  # byte counts only move forward

    def test_overshoot_raises(self):
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest)
        ledger.begin_pass([0], start_bytes=0.0)  # only one chunk pending
        with pytest.raises(IntegrityError):
            ledger.sync(1e9, 1.0)

    def test_inflight_corruption_window(self):
        faults = FaultSchedule(DataCorruption(start=0.0, duration=100.0, rate=1.0))
        manifest = make_manifest()
        ledger = DestinationLedger(manifest, faults, seed=1)
        ledger.begin_pass(list(range(len(manifest))), start_bytes=0.0)
        ledger.sync(manifest.total_bytes, 1.0)
        # rate=1.0 corrupts everything; digests diverge but byte totals don't.
        assert set(ledger.status.values()) == {"corrupt"}
        assert len(ledger.verify()) == len(manifest)
        assert ledger.verified_bytes == 0.0
        assert ledger.bytes_applied_total == pytest.approx(manifest.total_bytes)

    def test_torn_write_hits_chunk_in_flight(self):
        faults = FaultSchedule(TornWrite(at=5.0))
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        ledger.sync(0.3e9, 1.0)  # chunk 0 lands before the tear
        ledger.sync(0.6e9, 6.0)  # tear fires in [1, 6); chunk 1 completes torn
        assert ledger.status[0] == "ok"
        assert ledger.status[1] == "torn"
        assert not ledger.matches(1)

    def test_silent_truncation_drops_recent_chunks(self):
        faults = FaultSchedule(SilentTruncation(at=5.0, chunks=2))
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        ledger.sync(0.8e9, 1.0)  # chunks 0-2 durable
        ledger.sync(1e9, 6.0)  # truncation fires, then chunk 3 lands
        assert ledger.status[0] == "ok"
        assert ledger.status[1] == "missing" and ledger.status[2] == "missing"
        assert ledger.status[3] == "ok"
        assert sorted(ledger.verify()) == [1, 2]

    def test_atrest_corruption_strikes_durable_chunks(self):
        faults = FaultSchedule(
            DataCorruption(start=5.0, duration=1.0, rate=1.0, site="storage")
        )
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        ledger.sync(0.5e9, 1.0)  # chunks 0-1 durable before the strike
        ledger.sync(1e9, 6.0)
        assert ledger.status[0] == "corrupt" and ledger.status[1] == "corrupt"
        # Chunks 2-3 completed after the instant: untouched.
        assert ledger.status[2] == "ok" and ledger.status[3] == "ok"

    def test_resend_gets_fresh_corruption_draw(self):
        # A window with rate<1: a chunk corrupted on send 1 can come back
        # clean on send 2 because the draw is keyed on (chunk, send_count).
        faults = FaultSchedule(DataCorruption(start=0.0, duration=1000.0, rate=0.5))
        manifest = make_manifest(files=4, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults, seed=0)
        ledger.begin_pass(list(range(len(manifest))), start_bytes=0.0)
        ledger.sync(manifest.total_bytes, 1.0)
        bad = ledger.verify()
        assert 0 < len(bad) < len(manifest)  # rate 0.5: some of each
        ledger.demote(bad)
        ledger.begin_pass(bad, start_bytes=manifest.total_bytes - sum(
            manifest.size_of(c) for c in bad
        ))
        ledger.sync(manifest.total_bytes, 2.0)
        assert len(ledger.verify()) < len(bad)  # fresh draws recover some

    def test_snapshot_roundtrip(self, tmp_path):
        manifest = make_manifest()
        ledger = DestinationLedger(manifest, seed=5)
        ledger.begin_pass(list(range(len(manifest))), start_bytes=0.0)
        ledger.sync(manifest.total_bytes, 1.0)
        ledger.save(tmp_path / "destination.json")
        from repro.utils.config import load_json

        loaded = DestinationLedger.from_dict(
            manifest, load_json(tmp_path / "destination.json")
        )
        assert loaded.status == ledger.status
        assert loaded.digests == ledger.digests
        assert loaded.verified_bytes == ledger.verified_bytes
        assert loaded.bytes_applied_total == ledger.bytes_applied_total


class TestVerifiedTransfer:
    def test_clean_run_nothing_resent(self, tmp_path):
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(), tmp_path, IntegrityConfig(chunk_size=0.25e9)
        )
        result = vt.run()
        vt.journal.close()
        assert result.clean
        assert result.resent_chunk_ids == ()
        assert result.repair_rounds == 0
        assert vt.ledger.verify() == []
        assert vt.journal.replay().keys() == vt.manifest.expected().keys()

    def test_faulted_run_repairs_only_damaged_chunks(self, tmp_path):
        faults = FaultSchedule(
            [
                DataCorruption(start=2.0, duration=8.0, rate=0.4),
                TornWrite(at=5.0),
                SilentTruncation(at=12.0, chunks=2),
            ]
        )
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(faults), tmp_path, IntegrityConfig(chunk_size=0.25e9, seed=1)
        )
        result = vt.run()
        vt.journal.close()
        assert result.clean
        assert result.repair_rounds >= 1
        resent = set(result.resent_chunk_ids)
        assert resent  # damage happened and was repaired
        assert len(resent) < result.chunks_total  # surgical, not a full re-send
        assert vt.ledger.verify() == []
        assert all(vt.ledger.send_counts[c] >= 2 for c in resent)

    def test_acceptance_corruption_plus_crash_resends_only_damaged(self, tmp_path):
        """ISSUE acceptance: DataCorruption + mid-transfer crash; the resumed
        run verifies every manifest digest and re-transfers only the
        corrupted/torn chunks — counted by re-sent chunk ids."""
        faults = FaultSchedule(
            [DataCorruption(start=2.0, duration=10.0, rate=0.35), TornWrite(at=6.0)]
        )
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(faults),
            tmp_path,
            IntegrityConfig(chunk_size=0.25e9, seed=2, journal_flush_every=4),
        )

        crash_at = 12.0

        class Crash(Exception):
            pass

        def crasher(observation):
            if observation.elapsed >= crash_at:
                raise Crash

        with pytest.raises(Crash):
            vt.run(observer=crasher)
        vt.journal.crash(torn_tail=True)

        # State of the world at the crash: some chunks durable and claimed,
        # some durable-but-unclaimed (lost buffer), some damaged.
        claimed = vt.journal.replay()
        expected = vt.manifest.expected()
        good_claims = {c for c, d in claimed.items() if d == expected[c]}
        bad_before = set(vt.ledger.verify())

        result = vt.run(resume=True, resume_elapsed=crash_at)
        vt.journal.close()

        assert result.clean  # completed, every digest verified
        assert vt.ledger.verify() == []
        # Journal claims that matched the manifest were NOT re-transferred...
        accepted = good_claims & {
            c for c in expected if c not in set(result.resent_chunk_ids)
        }
        assert result.resumed_verified_chunks == len(accepted) > 0
        assert not (accepted & set(result.resent_chunk_ids))
        # ...and every chunk that was damaged at crash time was re-sent.
        resent = set(result.resent_chunk_ids)
        assert bad_before - good_claims <= resent | (bad_before - set(claimed))
        for chunk_id in resent & set(claimed):
            # Claimed-then-resent means the claim mismatched: real damage.
            assert claimed[chunk_id] != expected[chunk_id] or chunk_id not in good_claims
        assert vt.ledger.bytes_applied_total >= vt.manifest.total_bytes - 1.0

    def test_unrecoverable_damage_reports_honestly(self, tmp_path):
        # rate=1.0 for the whole run: every send of every chunk corrupts, so
        # the repair budget runs out and the result says so.
        faults = FaultSchedule(DataCorruption(start=0.0, duration=1e5, rate=1.0))
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(faults, gigabytes=1),
            tmp_path,
            IntegrityConfig(chunk_size=0.5e9, max_repair_rounds=2),
        )
        result = vt.run()
        vt.journal.close()
        assert result.completed
        assert not result.verified
        assert result.repair_rounds == 2
        assert result.unrecovered_chunk_ids


class TestVerifyArtifacts:
    def test_clean_run_dir_verifies(self, tmp_path):
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(), tmp_path, IntegrityConfig(chunk_size=0.25e9)
        )
        vt.run()
        vt.journal.close()
        vt.manifest.save(tmp_path / "manifest.json")
        vt.ledger.save(tmp_path / "destination.json")
        report = verify_artifacts(tmp_path)
        assert report["all_verified"]
        assert report["replay_idempotent"]
        assert report["journal_claims_ok"] == report["chunks_total"]
        assert report["destination_bad_chunks"] == []

    def test_damaged_destination_flagged(self, tmp_path):
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(), tmp_path, IntegrityConfig(chunk_size=0.25e9)
        )
        vt.run()
        vt.journal.close()
        vt.manifest.save(tmp_path / "manifest.json")
        vt.ledger.status[0] = "corrupt"  # bit rot after the run
        vt.ledger.digests[0] = 12345
        vt.ledger.save(tmp_path / "destination.json")
        report = verify_artifacts(tmp_path)
        assert not report["all_verified"]
        assert report["destination_bad_chunks"] == [0]
