"""End-to-end integrity: manifest, journal, ledger, verified resume/repair."""

import pytest

from repro.baselines import StaticController
from repro.emulator import (
    DataCorruption,
    FaultSchedule,
    NetworkConfig,
    SilentTruncation,
    StorageConfig,
    Testbed,
    TestbedConfig,
    TornWrite,
)
from repro.transfer import (
    ChunkJournal,
    DestinationLedger,
    EngineConfig,
    IntegrityConfig,
    ModularTransferEngine,
    SupervisorConfig,
    TransferManifest,
    TransferSupervisor,
    VerifiedTransfer,
    verify_artifacts,
)
from repro.transfer.files import uniform_dataset
from repro.utils.errors import IntegrityError
from repro.utils.units import GiB


def make_supervisor(faults=None, *, max_seconds=240.0, gigabytes=2):
    testbed = Testbed(
        TestbedConfig(
            source=StorageConfig(tpt=80, bandwidth=1000),
            destination=StorageConfig(tpt=200, bandwidth=1000),
            network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
            sender_buffer_capacity=1.0 * GiB,
            receiver_buffer_capacity=1.0 * GiB,
            max_threads=30,
        ),
        rng=0,
        faults=faults,
    )
    engine = ModularTransferEngine(
        testbed,
        uniform_dataset(gigabytes, 1e9),
        StaticController((13, 7, 5)),
        EngineConfig(max_seconds=max_seconds, seed=0),
    )
    return TransferSupervisor(engine, SupervisorConfig(seed=0))


def make_manifest(*, files=2, size=1e9, chunk_size=0.25e9, **kwargs):
    return TransferManifest(
        "ds", tuple((f"f{i:02d}", size) for i in range(files)), chunk_size, **kwargs
    )


class TestManifest:
    def test_chunking_covers_dataset(self):
        manifest = make_manifest(files=3, size=1e9, chunk_size=0.3e9)
        assert len(manifest) == 3 * 4  # ceil(1e9 / 0.3e9) = 4 per file
        assert manifest.total_bytes == pytest.approx(3e9)
        last = manifest.chunks[3]  # final chunk of the first file
        assert last.size == pytest.approx(1e9 - 3 * 0.3e9)

    def test_deterministic_and_seed_sensitive(self):
        assert make_manifest().expected() == make_manifest().expected()
        assert make_manifest().expected() != make_manifest(content_seed=1).expected()

    def test_roundtrip(self, tmp_path):
        manifest = make_manifest(algorithm="xxh32", content_seed=3)
        manifest.save(tmp_path / "manifest.json")
        loaded = TransferManifest.load(tmp_path / "manifest.json")
        assert loaded.expected() == manifest.expected()
        assert loaded.algorithm == "xxh32"

    def test_tampered_manifest_fails_loudly(self, tmp_path):
        manifest = make_manifest()
        blob = manifest.to_dict()
        blob["chunks"][0][5] ^= 1  # flip a digest bit
        with pytest.raises(IntegrityError):
            TransferManifest.from_dict(blob)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            make_manifest(algorithm="md5")


class TestJournal:
    def test_replay_last_record_wins(self, tmp_path):
        with ChunkJournal(tmp_path / "j.jsonl") as journal:
            journal.record(0, 111, 1.0)
            journal.record(1, 222, 2.0)
            journal.record(0, 333, 3.0)  # re-send supersedes
        journal = ChunkJournal(tmp_path / "j.jsonl")
        assert journal.replay() == {0: 333, 1: 222}
        journal.close()

    def test_missing_file_means_no_claims(self, tmp_path):
        journal = ChunkJournal(tmp_path / "never-written.jsonl")
        assert journal.replay() == {}

    def test_crash_loses_unflushed_buffer(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1000)
        journal.record(0, 111, 1.0)
        journal.flush()
        journal.record(1, 222, 2.0)  # buffered, never flushed
        journal.crash()
        assert ChunkJournal(tmp_path / "j.jsonl").replay() == {0: 111}

    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1)
        journal.record(0, 111, 1.0)
        journal.crash(torn_tail=True)
        resumed = ChunkJournal(tmp_path / "j.jsonl", flush_every=1)
        assert resumed.replay() == {0: 111}  # torn fragment dropped
        resumed.record(1, 222, 2.0)  # post-recovery append lands cleanly
        resumed.close()
        assert ChunkJournal(tmp_path / "j.jsonl").replay() == {0: 111, 1: 222}

    def test_replay_idempotent(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1)
        for i in range(10):
            journal.record(i, i * 7, float(i))
        journal.crash(torn_tail=True)
        journal = ChunkJournal(tmp_path / "j.jsonl")
        first = journal.replay()
        assert journal.replay() == first
        assert journal.replay() == first


class TestLedger:
    def test_sync_maps_bytes_to_chunks_in_order(self):
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        assert ledger.sync(0.3e9, 1.0) == [(0, manifest.chunks[0].digest)]
        assert ledger.status_counts() == {"ok": 1, "missing": 3}
        assert ledger.status[0] == "ok" and ledger.status[1] == "missing"
        done = ledger.sync(1e9, 2.0)
        assert [cid for cid, _ in done] == [1, 2, 3]
        assert ledger.verify() == []
        assert ledger.verified_bytes == pytest.approx(1e9)

    def test_stale_observation_ignored(self):
        ledger = DestinationLedger(make_manifest())
        ledger.begin_pass(list(range(8)), start_bytes=0.0)
        ledger.sync(0.5e9, 1.0)
        assert ledger.sync(0.4e9, 2.0) == []  # byte counts only move forward

    def test_overshoot_raises(self):
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest)
        ledger.begin_pass([0], start_bytes=0.0)  # only one chunk pending
        with pytest.raises(IntegrityError):
            ledger.sync(1e9, 1.0)

    def test_inflight_corruption_window(self):
        faults = FaultSchedule(DataCorruption(start=0.0, duration=100.0, rate=1.0))
        manifest = make_manifest()
        ledger = DestinationLedger(manifest, faults, seed=1)
        ledger.begin_pass(list(range(len(manifest))), start_bytes=0.0)
        ledger.sync(manifest.total_bytes, 1.0)
        # rate=1.0 corrupts everything; digests diverge but byte totals don't.
        assert set(ledger.status.values()) == {"corrupt"}
        assert len(ledger.verify()) == len(manifest)
        assert ledger.verified_bytes == 0.0
        assert ledger.bytes_applied_total == pytest.approx(manifest.total_bytes)

    def test_torn_write_hits_chunk_in_flight(self):
        faults = FaultSchedule(TornWrite(at=5.0))
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        ledger.sync(0.3e9, 1.0)  # chunk 0 lands before the tear
        ledger.sync(0.6e9, 6.0)  # tear fires in [1, 6); chunk 1 completes torn
        assert ledger.status[0] == "ok"
        assert ledger.status[1] == "torn"
        assert not ledger.matches(1)

    def test_silent_truncation_drops_recent_chunks(self):
        faults = FaultSchedule(SilentTruncation(at=5.0, chunks=2))
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        ledger.sync(0.8e9, 1.0)  # chunks 0-2 durable
        ledger.sync(1e9, 6.0)  # truncation fires, then chunk 3 lands
        assert ledger.status[0] == "ok"
        assert ledger.status[1] == "missing" and ledger.status[2] == "missing"
        assert ledger.status[3] == "ok"
        assert sorted(ledger.verify()) == [1, 2]

    def test_atrest_corruption_strikes_durable_chunks(self):
        faults = FaultSchedule(
            DataCorruption(start=5.0, duration=1.0, rate=1.0, site="storage")
        )
        manifest = make_manifest(files=1, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults)
        ledger.begin_pass([0, 1, 2, 3], start_bytes=0.0)
        ledger.sync(0.5e9, 1.0)  # chunks 0-1 durable before the strike
        ledger.sync(1e9, 6.0)
        assert ledger.status[0] == "corrupt" and ledger.status[1] == "corrupt"
        # Chunks 2-3 completed after the instant: untouched.
        assert ledger.status[2] == "ok" and ledger.status[3] == "ok"

    def test_resend_gets_fresh_corruption_draw(self):
        # A window with rate<1: a chunk corrupted on send 1 can come back
        # clean on send 2 because the draw is keyed on (chunk, send_count).
        faults = FaultSchedule(DataCorruption(start=0.0, duration=1000.0, rate=0.5))
        manifest = make_manifest(files=4, size=1e9, chunk_size=0.25e9)
        ledger = DestinationLedger(manifest, faults, seed=0)
        ledger.begin_pass(list(range(len(manifest))), start_bytes=0.0)
        ledger.sync(manifest.total_bytes, 1.0)
        bad = ledger.verify()
        assert 0 < len(bad) < len(manifest)  # rate 0.5: some of each
        ledger.demote(bad)
        ledger.begin_pass(bad, start_bytes=manifest.total_bytes - sum(
            manifest.size_of(c) for c in bad
        ))
        ledger.sync(manifest.total_bytes, 2.0)
        assert len(ledger.verify()) < len(bad)  # fresh draws recover some

    def test_snapshot_roundtrip(self, tmp_path):
        manifest = make_manifest()
        ledger = DestinationLedger(manifest, seed=5)
        ledger.begin_pass(list(range(len(manifest))), start_bytes=0.0)
        ledger.sync(manifest.total_bytes, 1.0)
        ledger.save(tmp_path / "destination.json")
        from repro.utils.config import load_json

        loaded = DestinationLedger.from_dict(
            manifest, load_json(tmp_path / "destination.json")
        )
        assert loaded.status == ledger.status
        assert loaded.digests == ledger.digests
        assert loaded.verified_bytes == ledger.verified_bytes
        assert loaded.bytes_applied_total == ledger.bytes_applied_total


class TestVerifiedTransfer:
    def test_clean_run_nothing_resent(self, tmp_path):
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(), tmp_path, IntegrityConfig(chunk_size=0.25e9)
        )
        result = vt.run()
        vt.journal.close()
        assert result.clean
        assert result.resent_chunk_ids == ()
        assert result.repair_rounds == 0
        assert vt.ledger.verify() == []
        assert vt.journal.replay().keys() == vt.manifest.expected().keys()

    def test_faulted_run_repairs_only_damaged_chunks(self, tmp_path):
        faults = FaultSchedule(
            [
                DataCorruption(start=2.0, duration=8.0, rate=0.4),
                TornWrite(at=5.0),
                SilentTruncation(at=12.0, chunks=2),
            ]
        )
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(faults), tmp_path, IntegrityConfig(chunk_size=0.25e9, seed=1)
        )
        result = vt.run()
        vt.journal.close()
        assert result.clean
        assert result.repair_rounds >= 1
        resent = set(result.resent_chunk_ids)
        assert resent  # damage happened and was repaired
        assert len(resent) < result.chunks_total  # surgical, not a full re-send
        assert vt.ledger.verify() == []
        assert all(vt.ledger.send_counts[c] >= 2 for c in resent)

    def test_acceptance_corruption_plus_crash_resends_only_damaged(self, tmp_path):
        """ISSUE acceptance: DataCorruption + mid-transfer crash; the resumed
        run verifies every manifest digest and re-transfers only the
        corrupted/torn chunks — counted by re-sent chunk ids."""
        faults = FaultSchedule(
            [DataCorruption(start=2.0, duration=10.0, rate=0.35), TornWrite(at=6.0)]
        )
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(faults),
            tmp_path,
            IntegrityConfig(chunk_size=0.25e9, seed=2, journal_flush_every=4),
        )

        crash_at = 12.0

        class Crash(Exception):
            pass

        def crasher(observation):
            if observation.elapsed >= crash_at:
                raise Crash

        with pytest.raises(Crash):
            vt.run(observer=crasher)
        vt.journal.crash(torn_tail=True)

        # State of the world at the crash: some chunks durable and claimed,
        # some durable-but-unclaimed (lost buffer), some damaged.
        claimed = vt.journal.replay()
        expected = vt.manifest.expected()
        good_claims = {c for c, d in claimed.items() if d == expected[c]}
        bad_before = set(vt.ledger.verify())

        result = vt.run(resume=True, resume_elapsed=crash_at)
        vt.journal.close()

        assert result.clean  # completed, every digest verified
        assert vt.ledger.verify() == []
        # Journal claims that matched the manifest were NOT re-transferred...
        accepted = good_claims & {
            c for c in expected if c not in set(result.resent_chunk_ids)
        }
        assert result.resumed_verified_chunks == len(accepted) > 0
        assert not (accepted & set(result.resent_chunk_ids))
        # ...and every chunk that was damaged at crash time was re-sent.
        resent = set(result.resent_chunk_ids)
        assert bad_before - good_claims <= resent | (bad_before - set(claimed))
        for chunk_id in resent & set(claimed):
            # Claimed-then-resent means the claim mismatched: real damage.
            assert claimed[chunk_id] != expected[chunk_id] or chunk_id not in good_claims
        assert vt.ledger.bytes_applied_total >= vt.manifest.total_bytes - 1.0

    def test_unrecoverable_damage_reports_honestly(self, tmp_path):
        # rate=1.0 for the whole run: every send of every chunk corrupts, so
        # the repair budget runs out and the result says so.
        faults = FaultSchedule(DataCorruption(start=0.0, duration=1e5, rate=1.0))
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(faults, gigabytes=1),
            tmp_path,
            IntegrityConfig(chunk_size=0.5e9, max_repair_rounds=2),
        )
        result = vt.run()
        vt.journal.close()
        assert result.completed
        assert not result.verified
        assert result.repair_rounds == 2
        assert result.unrecovered_chunk_ids


class TestVerifyArtifacts:
    def test_clean_run_dir_verifies(self, tmp_path):
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(), tmp_path, IntegrityConfig(chunk_size=0.25e9)
        )
        vt.run()
        vt.journal.close()
        vt.manifest.save(tmp_path / "manifest.json")
        vt.ledger.save(tmp_path / "destination.json")
        report = verify_artifacts(tmp_path)
        assert report["all_verified"]
        assert report["replay_idempotent"]
        assert report["journal_claims_ok"] == report["chunks_total"]
        assert report["destination_bad_chunks"] == []

    def test_damaged_destination_flagged(self, tmp_path):
        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(), tmp_path, IntegrityConfig(chunk_size=0.25e9)
        )
        vt.run()
        vt.journal.close()
        vt.manifest.save(tmp_path / "manifest.json")
        vt.ledger.status[0] = "corrupt"  # bit rot after the run
        vt.ledger.digests[0] = 12345
        vt.ledger.save(tmp_path / "destination.json")
        report = verify_artifacts(tmp_path)
        assert not report["all_verified"]
        assert report["destination_bad_chunks"] == [0]


class TestBatchedJournal:
    """Coalescing WAL lanes: chunkbatch, chunkrun, and mixed legacy records."""

    def test_record_batch_replays_like_singles(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1)
        journal.record_batch([3, 1, 4], [30, 10, 40], 1.0)
        journal.record(1, 99, 2.0)  # later single record wins for chunk 1
        journal.close()
        assert journal.replay() == {3: 30, 1: 99, 4: 40}

    def test_record_runs_coalesces_consecutive_calls(self, tmp_path):
        expected = {i: 1000 + i for i in range(10)}
        journal = ChunkJournal(
            tmp_path / "j.jsonl", flush_every=100, expected=expected
        )
        journal.record_runs([0, 1, 2], 1.0)
        journal.record_runs([3, 4], 2.0)  # extends the open run in place
        journal.record_runs([7, 8], 3.0)  # gap: new run
        journal.close()
        lines = (tmp_path / "j.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2  # two coalesced chunkrun records, not four
        assert journal.replay() == {c: expected[c] for c in (0, 1, 2, 3, 4, 7, 8)}

    def test_chunkrun_replay_requires_expected_digests(self, tmp_path):
        journal = ChunkJournal(tmp_path / "j.jsonl", flush_every=1, expected={0: 5})
        journal.record_runs([0], 1.0)
        journal.close()
        blind = ChunkJournal(tmp_path / "j.jsonl")
        with pytest.raises(IntegrityError):
            blind.replay()
        blind.close()

    def test_claim_counting_flush_bound(self, tmp_path):
        # Batch appends count *claims*, not lines: 3+3 claims with
        # flush_every=4 must hit disk after the second batch.
        journal = ChunkJournal(
            tmp_path / "j.jsonl", flush_every=4, expected={i: i for i in range(10)}
        )
        journal.record_runs([0, 1, 2], 1.0)
        assert (
            not (tmp_path / "j.jsonl").exists()
            or (tmp_path / "j.jsonl").read_text() == ""
        )
        journal.record_runs([3, 4, 5], 2.0)
        on_disk = (tmp_path / "j.jsonl").read_text()
        assert "chunkrun" in on_disk
        journal.crash()  # nothing buffered any more: all claims survive
        resumed = ChunkJournal(tmp_path / "j.jsonl", expected={i: i for i in range(10)})
        assert resumed.replay() == {i: i for i in range(6)}
        resumed.close()

    def test_crash_loses_open_coalesced_run(self, tmp_path):
        journal = ChunkJournal(
            tmp_path / "j.jsonl", flush_every=100, expected={i: i for i in range(8)}
        )
        journal.record_runs([0, 1], 1.0)
        journal.flush()  # claims 0-1 durable
        journal.record_runs([2, 3], 2.0)  # open run, still buffered
        journal.crash(torn_tail=True)
        resumed = ChunkJournal(tmp_path / "j.jsonl", expected={i: i for i in range(8)})
        assert resumed.replay() == {0: 0, 1: 1}
        resumed.close()

    def test_faulted_sync_journals_batch_with_actual_digests(self, tmp_path):
        faults = FaultSchedule(DataCorruption(start=0.0, duration=100.0, rate=1.0))
        manifest = make_manifest()
        ledger = DestinationLedger(manifest, faults, seed=1)
        journal = ChunkJournal(
            tmp_path / "j.jsonl", flush_every=1, expected=manifest.chunk_digests
        )
        ledger.begin_pass(range(len(manifest)), start_bytes=0.0)
        ledger.sync(manifest.total_bytes, 1.0, journal)
        journal.close()
        claims = journal.replay()
        # Every chunk corrupted: journaled digests differ from the manifest.
        assert claims.keys() == manifest.expected().keys()
        assert all(claims[c] != manifest.chunk_digests[c] for c in claims)
        text = (tmp_path / "j.jsonl").read_text()
        assert "chunkbatch" in text and "chunkrun" not in text


class TestZeroCopyPipeline:
    def test_payload_of_is_arena_view(self):
        manifest = make_manifest()
        for chunk in manifest.chunks:
            view = manifest.payload_of(chunk.chunk_id)
            assert isinstance(view, memoryview)
            assert bytes(view) == manifest.payload(chunk.file, chunk.index)

    def test_digests_match_per_chunk_oracle(self):
        for algorithm in ("crc32c", "xxh32"):
            manifest = make_manifest(algorithm=algorithm)
            digest_fn = manifest.digest_fn()
            for chunk in manifest.chunks:
                assert chunk.digest == digest_fn(
                    manifest.payload(chunk.file, chunk.index)
                )

    def test_divergent_digests_unique_per_marker(self):
        # Zero-copy divergent digests (chained off the expected value) must
        # still differ from the expected digest and from each other.
        for algorithm in ("crc32c", "xxh32"):
            manifest = make_manifest(algorithm=algorithm)
            ledger = DestinationLedger(manifest, FaultSchedule(TornWrite(at=1.0)))
            seen = {manifest.chunk_digests[0]}
            for marker in (b"|torn:1", b"|flip:1", b"|rest:1", b"|torn:2"):
                digest = ledger._divergent_digest(0, marker)
                assert digest not in seen
                seen.add(digest)


class TestColumnarLedgerViews:
    def test_status_column_behaves_like_dict(self):
        manifest = make_manifest()
        ledger = DestinationLedger(manifest)
        assert ledger.status[0] == "missing"
        assert set(ledger.status.keys()) == set(range(len(manifest)))
        assert ledger.status.values() == ["missing"] * len(manifest)
        ledger.status[2] = "corrupt"
        assert ledger.status.get(2) == "corrupt"
        assert ledger.status.get(99, "absent") == "absent"
        assert dict(ledger.status.items())[2] == "corrupt"
        assert ledger.status == {
            cid: ("corrupt" if cid == 2 else "missing") for cid in range(len(manifest))
        }

    def test_digest_column_none_sentinel(self):
        ledger = DestinationLedger(make_manifest())
        assert ledger.digests[0] is None
        ledger.digests[0] = 123
        assert ledger.digests[0] == 123
        ledger.digests[0] = None
        assert ledger.digests[0] is None

    def test_column_equality_across_ledgers(self):
        a = DestinationLedger(make_manifest())
        b = DestinationLedger(make_manifest())
        assert a.status == b.status and a.digests == b.digests
        b.send_counts[1] = 5
        assert a.send_counts != b.send_counts

    def test_clean_and_empty_faulted_sync_paths_agree(self):
        # The batched clean path and the scalar faulted path must produce
        # identical ledger state for the same byte trace.
        manifest = make_manifest()
        clean = DestinationLedger(manifest)
        faulted = DestinationLedger(manifest, FaultSchedule())  # no events
        for ledger in (clean, faulted):
            ledger.begin_pass(range(len(manifest)), start_bytes=0.0)
        done_clean, done_faulted = [], []
        step = manifest.total_bytes / 7
        for i in range(1, 8):
            done_clean += clean.sync(step * i, float(i))
            done_faulted += faulted.sync(step * i, float(i))
        assert done_clean == done_faulted
        assert clean.status == faulted.status
        assert clean.digests == faulted.digests
        assert clean.send_counts == faulted.send_counts
        assert clean.verified_bytes == faulted.verified_bytes


class TestVerifyTelemetry:
    def test_run_emits_verify_counter_and_gauge(self, tmp_path):
        from repro import obs

        vt = VerifiedTransfer.for_supervisor(
            make_supervisor(), tmp_path / "run", IntegrityConfig(chunk_size=0.25e9)
        )
        with obs.session(tmp_path / "obs") as sess:
            result = vt.run()
        vt.journal.close()
        assert result.clean
        assert result.verify_seconds > 0.0
        assert result.verify_mb_per_s > 0.0
        counter = sess.registry.counter("transfer.verify.bytes")
        assert counter.value == pytest.approx(vt.manifest.total_bytes)
        gauge = sess.registry.gauge("transfer.verify.mb_per_s")
        assert gauge.value == pytest.approx(result.verify_mb_per_s)
