"""Satellite: the supervisor's wall-clock retry budget (``max_elapsed``)."""

import math

import pytest

from repro.transfer import SupervisorConfig, TransferSupervisor
from repro.emulator import FaultSchedule, LinkFlap
from repro.utils.errors import ConfigError

from tests.transfer.test_supervisor import make_engine


def permanent_outage_engine():
    # requires_restart=False: the path stays down however often we restart,
    # so every retry is fruitless and only the budget (or the retry counter)
    # can stop the loop.  max_seconds is generous so the engine's own
    # timeout never races either stop rule.
    return make_engine(
        FaultSchedule([LinkFlap(start=5.0, duration=1e4, requires_restart=False)]),
        max_seconds=2000.0,
    )


class TestConfig:
    def test_default_is_unbounded(self):
        assert SupervisorConfig().max_elapsed == math.inf

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigError):
            SupervisorConfig(max_elapsed=bad)


class TestBudgetExhaustion:
    def run_supervised(self, max_elapsed, seed=0):
        return TransferSupervisor(
            permanent_outage_engine(),
            SupervisorConfig(seed=seed, max_retries=10, max_elapsed=max_elapsed),
        ).run()

    def test_budget_stops_the_retry_loop_early(self):
        capped = self.run_supervised(max_elapsed=25.0)
        assert not capped.completed
        assert capped.budget_exhausted
        # The budget, not the retry counter, ended the loop.
        assert capped.retries_used < 10
        # And no resume was ever scheduled past the cap.
        for attempt in capped.attempts:
            assert attempt.start_time <= 25.0

    def test_unbounded_budget_exhausts_retries_instead(self):
        free = self.run_supervised(max_elapsed=math.inf)
        assert not free.budget_exhausted
        assert free.retries_used == 10

    def test_typed_outcome_is_distinct_from_timeout(self):
        capped = self.run_supervised(max_elapsed=25.0)
        assert capped.budget_exhausted and not capped.timed_out
        timed = TransferSupervisor(
            make_engine(max_seconds=3.0), SupervisorConfig(seed=0)
        ).run()
        assert timed.timed_out and not timed.budget_exhausted

    def test_seeded_and_deterministic(self):
        a = self.run_supervised(max_elapsed=25.0, seed=11)
        b = self.run_supervised(max_elapsed=25.0, seed=11)
        assert a.attempts == b.attempts
        assert a.retries_used == b.retries_used
        assert a.completion_time == b.completion_time

    def test_healthy_transfer_never_touches_the_budget(self):
        result = TransferSupervisor(
            make_engine(), SupervisorConfig(seed=0, max_elapsed=30.0)
        ).run()
        assert result.completed
        assert not result.budget_exhausted
