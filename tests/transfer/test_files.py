"""Datasets: construction, efficiency factors, generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer.files import Dataset, FileSpec, log_uniform_dataset, uniform_dataset
from repro.utils.errors import ConfigError


class TestFileSpec:
    def test_valid(self):
        f = FileSpec("a", 100.0)
        assert f.size == 100.0

    def test_rejects_non_positive_size(self):
        with pytest.raises(ConfigError):
            FileSpec("bad", 0.0)


class TestDataset:
    def test_totals(self):
        ds = Dataset([FileSpec("a", 10), FileSpec("b", 30)])
        assert ds.total_bytes == 40
        assert ds.num_files == 2
        assert ds.mean_file_size == 20

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Dataset([])

    def test_iteration(self):
        ds = Dataset([FileSpec("a", 1), FileSpec("b", 2)])
        assert [f.name for f in ds] == ["a", "b"]
        assert ds[1].size == 2


class TestStageEfficiency:
    def test_zero_cost_is_one(self):
        ds = uniform_dataset(10, 1e6)
        assert ds.stage_efficiency(1000.0, 0.0) == 1.0

    def test_small_files_hurt_more(self):
        small = uniform_dataset(1000, 1e6)  # 1 MB files
        large = uniform_dataset(1, 1e9)  # one 1 GB file
        assert small.stage_efficiency(1000, 0.01) < large.stage_efficiency(1000, 0.01)

    def test_faster_rate_hurts_more(self):
        # Fixed per-file cost wastes more of a faster thread.
        ds = uniform_dataset(100, 1e7)
        assert ds.stage_efficiency(2000, 0.01) < ds.stage_efficiency(200, 0.01)

    def test_exact_formula(self):
        ds = uniform_dataset(10, 1e8)  # mean = 1e8 bytes
        rate_bytes = 1000 * 1e6 / 8  # 1000 Mbps
        expected = 1.0 / (1.0 + 0.05 * rate_bytes / 1e8)
        assert ds.stage_efficiency(1000, 0.05) == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=1, max_value=1e5), st.floats(min_value=0, max_value=10))
    def test_always_in_unit_interval(self, rate, cost):
        """Property: efficiency is always in (0, 1]."""
        ds = uniform_dataset(5, 1e7)
        eff = ds.stage_efficiency(rate, cost)
        assert 0.0 < eff <= 1.0


class TestGenerators:
    def test_uniform_dataset(self):
        ds = uniform_dataset(100, 1e9)
        assert ds.num_files == 100
        assert ds.total_bytes == 100e9
        assert len({f.name for f in ds}) == 100

    def test_uniform_rejects_zero_files(self):
        with pytest.raises(ConfigError):
            uniform_dataset(0, 1e9)

    def test_log_uniform_total_exact(self):
        ds = log_uniform_dataset(1e9, 1e5, 1e8, np.random.default_rng(0))
        assert ds.total_bytes == pytest.approx(1e9)

    def test_log_uniform_sizes_in_range(self):
        ds = log_uniform_dataset(1e9, 1e5, 1e8, np.random.default_rng(0))
        # All but the trimmed last file respect the bounds.
        for f in ds.files[:-1]:
            assert 1e5 * 0.99 <= f.size <= 1e8 * 1.01

    def test_log_uniform_invalid_bounds(self):
        with pytest.raises(ConfigError):
            log_uniform_dataset(1e9, 100.0, 10.0, np.random.default_rng(0))


class TestWorkloads:
    def test_large_dataset_shape(self):
        from repro.workloads import large_dataset

        ds = large_dataset(total_bytes=5e9)
        assert ds.num_files == 5
        assert all(f.size == 1e9 for f in ds)

    def test_mixed_dataset_range_and_total(self):
        from repro.workloads import mixed_dataset

        ds = mixed_dataset(total_bytes=5e9, rng=0)
        assert ds.total_bytes == pytest.approx(5e9)
        for f in ds.files[:-1]:
            assert 100 * 1024 <= f.size <= 2 * 1024**3

    def test_mixed_dataset_small_file_heavy(self):
        from repro.workloads import large_dataset, mixed_dataset

        mixed = mixed_dataset(total_bytes=2e10, rng=0)
        large = large_dataset(total_bytes=2e10)
        assert mixed.mean_file_size < large.mean_file_size

    def test_fig3_dataset(self):
        from repro.workloads import fig3_dataset

        ds = fig3_dataset()
        assert ds.num_files == 100
        assert ds.total_bytes == 100e9

    def test_scaled_preserves_distribution(self):
        from repro.workloads import large_dataset, scaled

        ds = scaled(large_dataset, 0.01)
        assert ds.total_bytes == pytest.approx(1e10)
        assert all(f.size == 1e9 for f in ds)

    def test_scaled_rejects_bad_fraction(self):
        from repro.workloads import large_dataset, scaled

        with pytest.raises(ValueError):
            scaled(large_dataset, 0.0)
