"""GuardedController: sanitation, pathological-output fallback, recovery."""

import math

import pytest

from repro.baselines import StaticController
from repro.transfer import GuardedController, Observation
from repro.utils.errors import ConfigError

NAN = float("nan")


def make_obs(
    *,
    throughputs=(100.0, 100.0, 100.0),
    sender_free=0.5,
    receiver_free=0.5,
    sender_capacity=1.0,
    receiver_capacity=1.0,
    elapsed=0.0,
):
    return Observation(
        threads=(1, 1, 1),
        throughputs=throughputs,
        sender_free=sender_free,
        receiver_free=receiver_free,
        sender_capacity=sender_capacity,
        receiver_capacity=receiver_capacity,
        elapsed=elapsed,
        bytes_written_total=0.0,
    )


class SpyController:
    """Scripted primary: replays `proposals`, records what it was shown."""

    def __init__(self, proposals):
        self.proposals = list(proposals)
        self.seen = []
        self.resets = 0

    def propose(self, observation):
        self.seen.append(observation)
        if len(self.proposals) > 1:
            return self.proposals.pop(0)
        return self.proposals[0]

    def reset(self):
        self.resets += 1


def guarded(proposals=((5, 5, 5),), **kwargs):
    primary = SpyController(proposals)
    kwargs.setdefault("fallback", StaticController((2, 2, 2)))
    return GuardedController(primary, **kwargs), primary


class TestSanitation:
    def test_clean_observation_passes_through_untouched(self):
        guard, primary = guarded()
        obs = make_obs()
        assert guard.propose(obs) == (5, 5, 5)
        assert primary.seen == [obs]

    def test_nan_throughputs_are_zeroed(self):
        guard, primary = guarded()
        guard.propose(make_obs(throughputs=(NAN, float("inf"), -50.0)))
        assert primary.seen[0].throughputs == (0.0, 0.0, 0.0)

    def test_degenerate_capacities_are_replaced(self):
        guard, primary = guarded()
        guard.propose(
            make_obs(sender_capacity=0.0, receiver_capacity=NAN, receiver_free=NAN)
        )
        seen = primary.seen[0]
        assert seen.sender_capacity == 1.0
        assert seen.receiver_capacity == 1.0
        assert seen.receiver_free == 1.0  # unreported → assume empty buffer

    def test_free_space_clamped_to_capacity(self):
        guard, primary = guarded()
        guard.propose(make_obs(sender_free=5.0, receiver_free=-1.0))
        seen = primary.seen[0]
        assert seen.sender_free == seen.sender_capacity
        assert seen.receiver_free == 0.0

    def test_everything_primary_sees_is_finite(self):
        guard, primary = guarded()
        guard.propose(
            make_obs(
                throughputs=(NAN, NAN, NAN),
                sender_free=NAN,
                receiver_free=NAN,
                sender_capacity=NAN,
                receiver_capacity=0.0,
            )
        )
        seen = primary.seen[0]
        fields = (
            *seen.throughputs,
            seen.sender_free,
            seen.receiver_free,
            seen.sender_capacity,
            seen.receiver_capacity,
        )
        assert all(math.isfinite(v) for v in fields)


class TestOutputGuards:
    def test_malformed_proposal_triggers_immediate_fallback(self):
        guard, _ = guarded(proposals=[(NAN, 1, 1)])
        assert guard.propose(make_obs()) == (2, 2, 2)
        assert guard.degraded
        assert guard.events == [(0.0, "degraded:malformed_proposal")]

    def test_out_of_range_streak_triggers_fallback(self):
        guard, _ = guarded(proposals=[(99, 1, 1)], out_of_range_limit=3)
        assert guard.propose(make_obs()) == (30, 1, 1)  # clamped, streak 1
        assert guard.propose(make_obs()) == (30, 1, 1)  # streak 2
        assert guard.propose(make_obs()) == (2, 2, 2)  # streak 3 → fallback
        assert guard.degraded
        assert guard.events[-1][1] == "degraded:out_of_range"

    def test_single_excursion_does_not_degrade(self):
        guard, _ = guarded(
            proposals=[(99, 1, 1), (5, 5, 5)], out_of_range_limit=3
        )
        guard.propose(make_obs())
        for _ in range(5):
            assert guard.propose(make_obs()) == (5, 5, 5)
        assert not guard.degraded

    def test_thrashing_triggers_fallback(self):
        swings = [(1, 1, 1), (15, 15, 15), (1, 1, 1), (15, 15, 15)]
        guard, _ = guarded(proposals=swings, thrash_threshold=12, thrash_window=3)
        results = [guard.propose(make_obs()) for _ in range(4)]
        assert results[-1] == (2, 2, 2)
        assert guard.degraded
        assert guard.events[-1][1] == "degraded:thrashing"

    def test_fallback_engaged_resets_fallback_controller(self):
        fallback = SpyController([(2, 2, 2)])
        guard = GuardedController(
            SpyController([(NAN, 1, 1)]), fallback=fallback
        )
        guard.propose(make_obs())
        assert fallback.resets == 1


class TestRecovery:
    def degraded_guard(self, **kwargs):
        kwargs.setdefault("recovery_intervals", 2)
        guard, primary = guarded(proposals=[(NAN, 1, 1), (6, 6, 6)], **kwargs)
        guard.propose(make_obs())  # malformed → degraded
        assert guard.degraded
        return guard, primary

    def test_recovers_after_clean_streak(self):
        guard, _ = self.degraded_guard(recovery_intervals=2)
        assert guard.propose(make_obs(elapsed=1.0)) == (2, 2, 2)
        assert guard.propose(make_obs(elapsed=2.0)) == (2, 2, 2)
        assert not guard.degraded
        assert guard.events[-1] == (2.0, "recovered")
        # Primary is back in charge on the next interval.
        assert guard.propose(make_obs(elapsed=3.0)) == (6, 6, 6)

    def test_dirty_observations_postpone_recovery(self):
        guard, _ = self.degraded_guard(recovery_intervals=2)
        guard.propose(make_obs(throughputs=(NAN, 0.0, 0.0), elapsed=1.0))
        guard.propose(make_obs(elapsed=2.0))  # clean streak back to 1
        assert guard.degraded
        guard.propose(make_obs(elapsed=3.0))
        assert not guard.degraded

    def test_degraded_intervals_counted(self):
        guard, _ = self.degraded_guard(recovery_intervals=2)
        guard.propose(make_obs(elapsed=1.0))
        guard.propose(make_obs(elapsed=2.0))
        assert guard.degraded_intervals == 2


class TestLifecycle:
    def test_reset_clears_state_and_resets_both_controllers(self):
        guard, primary = guarded(proposals=[(NAN, 1, 1)])
        guard.propose(make_obs())
        assert guard.degraded
        guard.reset()
        assert not guard.degraded
        assert guard.events == []
        assert guard.degraded_intervals == 0
        assert primary.resets == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            GuardedController(SpyController([(1, 1, 1)]), max_threads=0)
        with pytest.raises(ConfigError):
            GuardedController(SpyController([(1, 1, 1)]), recovery_intervals=0)


class TestDegradedMetric:
    def test_degraded_entry_increments_labelled_counter(self, tmp_path):
        from repro import obs

        with obs.session(tmp_path) as sess:
            guard, _ = guarded(proposals=[(NAN, 1, 1)])
            guard.propose(make_obs())
            assert guard.degraded
            snapshot = sess.registry.snapshot()
        entries = snapshot["guard/degraded_total"]
        assert entries == [
            {
                "kind": "counter",
                "labels": {"reason": "malformed_proposal"},
                "value": 1.0,
            }
        ]

    def test_distinct_reasons_get_distinct_label_rows(self, tmp_path):
        from repro import obs

        with obs.session(tmp_path) as sess:
            first, _ = guarded(proposals=[(NAN, 1, 1)])
            first.propose(make_obs())
            swings = [(1, 1, 1), (15, 15, 15), (1, 1, 1), (15, 15, 15)]
            second, _ = guarded(
                proposals=swings, thrash_threshold=12, thrash_window=3
            )
            for _ in range(4):
                second.propose(make_obs())
            snapshot = sess.registry.snapshot()
        reasons = {e["labels"]["reason"] for e in snapshot["guard/degraded_total"]}
        assert reasons == {"malformed_proposal", "thrashing"}

    def test_no_session_degrades_without_metrics(self):
        guard, _ = guarded(proposals=[(NAN, 1, 1)])
        guard.propose(make_obs())  # must not raise with telemetry disabled
        assert guard.degraded
