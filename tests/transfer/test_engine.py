"""Modular transfer engine: completion, metrics, controller protocol."""

import pytest

from repro.baselines import StaticController
from repro.core.utility import UtilityFunction
from repro.emulator import NetworkConfig, StorageConfig, Testbed, TestbedConfig
from repro.transfer import (
    EngineConfig,
    ModularTransferEngine,
    MonolithicController,
    Observation,
)
from repro.transfer.files import uniform_dataset
from repro.utils.units import GiB


def make_testbed(**overrides) -> Testbed:
    defaults = dict(
        source=StorageConfig(tpt=80, bandwidth=1000),
        destination=StorageConfig(tpt=200, bandwidth=1000),
        network=NetworkConfig(tpt=160, capacity=1000, ramp_time=0.0),
        sender_buffer_capacity=1.0 * GiB,
        receiver_buffer_capacity=1.0 * GiB,
        max_threads=30,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults), rng=0)


def run_static(threads=(13, 7, 5), dataset=None, **cfg):
    cfg.setdefault("max_seconds", 600)
    dataset = dataset or uniform_dataset(5, 1e9)
    engine = ModularTransferEngine(
        make_testbed(), dataset, StaticController(threads), EngineConfig(**cfg)
    )
    return engine.run()


class TestCompletion:
    def test_transfer_completes(self):
        result = run_static()
        assert result.completed
        assert result.total_bytes == 5e9

    def test_completion_time_plausible(self):
        # 5 GB over a 1 Gbps bottleneck: ideal = 40 s; allow pipeline fill.
        result = run_static()
        assert 40.0 <= result.completion_time <= 60.0

    def test_effective_throughput(self):
        result = run_static()
        assert result.effective_throughput == pytest.approx(
            result.total_bytes * 8e-6 / result.completion_time
        )

    def test_incomplete_when_budget_too_small(self):
        result = run_static(max_seconds=3.0)
        assert not result.completed
        assert result.completion_time >= 3.0

    def test_slower_controller_takes_longer(self):
        fast = run_static((13, 7, 5))
        slow = run_static((2, 2, 2))
        assert slow.completion_time > fast.completion_time

    def test_every_byte_written(self):
        result = run_static()
        written = result.metrics.bytes_written.last
        assert written == pytest.approx(result.total_bytes, rel=1e-6)


class TestMetricsRecording:
    def test_series_lengths_match(self):
        m = run_static().metrics
        assert len(m.throughput_read) == len(m.threads_network) == len(m.sender_usage)

    def test_thread_series_constant_for_static(self):
        m = run_static((4, 5, 6)).metrics
        assert set(m.threads_read.values) == {4.0}
        assert set(m.threads_network.values) == {5.0}
        assert set(m.threads_write.values) == {6.0}

    def test_utility_recorded_when_fn_given(self):
        utility = UtilityFunction()
        engine = ModularTransferEngine(
            make_testbed(),
            uniform_dataset(2, 1e9),
            StaticController((13, 7, 5)),
            EngineConfig(max_seconds=600),
            utility_fn=utility,
        )
        result = engine.run()
        assert len(result.metrics.utility) == len(result.metrics.throughput_read)
        assert result.metrics.utility.max() > 0

    def test_concurrency_cost(self):
        m = run_static((4, 5, 6)).metrics
        assert m.concurrency_cost() == pytest.approx(15.0)

    def test_time_to_network_concurrency(self):
        m = run_static((13, 7, 5)).metrics
        assert m.time_to_network_concurrency(7) is not None


class TestObservationFlow:
    def test_controller_sees_growing_elapsed(self):
        seen = []

        class Spy:
            def propose(self, obs):
                seen.append(obs)
                return (13, 7, 5)

            def reset(self):
                pass

        ModularTransferEngine(
            make_testbed(), uniform_dataset(2, 1e9), Spy(), EngineConfig(max_seconds=120)
        ).run()
        assert seen[0].elapsed == 0.0
        assert seen[-1].elapsed > seen[1].elapsed
        assert all(isinstance(o, Observation) for o in seen)

    def test_rpc_delay_staleness(self):
        """With delay=2 the receiver_free the controller sees lags reality."""
        fresh, stale = [], []

        class Spy:
            def propose(self, obs):
                stale.append(obs.receiver_free)
                return (13, 7, 1)  # write throttled so receiver fills

            def reset(self):
                pass

        tb = make_testbed()
        ModularTransferEngine(
            tb, uniform_dataset(2, 1e9), Spy(), EngineConfig(max_seconds=10, rpc_delay=2)
        ).run()
        # First two reports are the initial (empty) buffer.
        assert stale[1] == pytest.approx(stale[0])

    def test_observation_usage_properties(self):
        obs = Observation(
            threads=(1, 2, 3),
            throughputs=(0, 0, 0),
            sender_free=70.0,
            receiver_free=40.0,
            sender_capacity=100.0,
            receiver_capacity=100.0,
            elapsed=0.0,
            bytes_written_total=0.0,
        )
        assert obs.sender_usage == 30.0
        assert obs.receiver_usage == 60.0


class TestMonolithicController:
    def test_expands_concurrency(self):
        ctrl = MonolithicController(4, parallelism=8)
        obs = Observation((1, 1, 1), (0, 0, 0), 1, 1, 1, 1, 0.0, 0.0)
        assert ctrl.propose(obs) == (4, 32, 4)

    def test_callable_policy(self):
        ctrl = MonolithicController(lambda obs: 6, parallelism=2)
        obs = Observation((1, 1, 1), (0, 0, 0), 1, 1, 1, 1, 0.0, 0.0)
        assert ctrl.propose(obs) == (6, 12, 6)

    def test_globus_defaults(self):
        from repro.baselines import GlobusController

        ctrl = GlobusController()
        obs = Observation((1, 1, 1), (0, 0, 0), 1, 1, 1, 1, 0.0, 0.0)
        assert ctrl.propose(obs) == (4, 32, 4)


class TestStaticControllerValidation:
    def test_rejects_bad_triple(self):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError):
            StaticController((0, 1, 2))
        with pytest.raises(ConfigError):
            StaticController((1, 2))
