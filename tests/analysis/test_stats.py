"""Bootstrap statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import ConfidenceInterval, bootstrap_ci, ratio_ci, summarize


class TestBootstrapCi:
    def test_point_estimate_is_statistic(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0])
        assert ci.estimate == pytest.approx(2.0)

    def test_interval_contains_estimate(self):
        ci = bootstrap_ci(np.random.default_rng(0).normal(10, 2, size=50))
        assert ci.low <= ci.estimate <= ci.high

    def test_tight_for_constant_sample(self):
        ci = bootstrap_ci([5.0] * 20)
        assert ci.low == ci.high == 5.0

    def test_single_sample_degenerate(self):
        ci = bootstrap_ci([7.0])
        assert (ci.low, ci.estimate, ci.high) == (7.0, 7.0, 7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_deterministic_for_seed(self):
        data = [1.0, 5.0, 3.0, 2.0]
        a, b = bootstrap_ci(data, rng=3), bootstrap_ci(data, rng=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_custom_statistic(self):
        ci = bootstrap_ci([1.0, 2.0, 100.0], statistic=np.median)
        assert ci.estimate == 2.0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30))
    def test_coverage_ordering_property(self, values):
        """Property: low <= estimate' for mean in [low, high] interval."""
        ci = bootstrap_ci(values, n_boot=200)
        assert ci.low <= ci.high
        assert np.mean(values) in ci

    def test_contains(self):
        ci = ConfidenceInterval(2.0, 1.0, 3.0, 0.95)
        assert 2.5 in ci
        assert 4.0 not in ci


class TestRatioCi:
    def test_point_estimate(self):
        ci = ratio_ci([10.0, 12.0], [5.0, 5.0])
        assert ci.estimate == pytest.approx(2.2)

    def test_single_samples(self):
        ci = ratio_ci([10.0], [5.0])
        assert ci.estimate == 2.0
        assert ci.low == ci.high == 2.0

    def test_zero_denominator_raises(self):
        with pytest.raises(ValueError):
            ratio_ci([1.0], [0.0])

    def test_interval_brackets_true_ratio(self):
        rng = np.random.default_rng(1)
        num = rng.normal(20, 1, size=30)
        den = rng.normal(10, 1, size=30)
        ci = ratio_ci(num, den)
        assert ci.low < 2.0 < ci.high


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0
        assert s["median"] == 2.0
        assert s["n"] == 3

    def test_nan_filtered(self):
        s = summarize([1.0, float("nan"), 3.0])
        assert s["n"] == 2
        assert s["mean"] == 2.0

    def test_empty(self):
        assert np.isnan(summarize([])["mean"])
