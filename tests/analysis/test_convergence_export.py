"""Convergence detection and exporters."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    detect_plateau,
    rolling_convergence_episode,
    rolling_mean,
    time_to_sustained,
)
from repro.analysis.export import export_experiment, series_to_csv, summary_to_markdown
from repro.harness.result import ExperimentResult
from repro.utils.timeseries import TimeSeries


class TestRollingMean:
    def test_window_one_is_identity(self):
        np.testing.assert_array_equal(rolling_mean([1, 2, 3], 1), [1, 2, 3])

    def test_window_average(self):
        np.testing.assert_allclose(rolling_mean([0, 2, 4, 6], 2), [1, 3, 5])

    def test_short_input_empty(self):
        assert rolling_mean([1.0], 5).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_mean([1.0], 0)


class TestRollingConvergence:
    def test_detects_crossing(self):
        rewards = [0.0] * 50 + [10.0] * 100
        idx = rolling_convergence_episode(rewards, target=9.5, window=10)
        # Window must lie fully inside the 10.0 region: episodes 50..59.
        assert idx == 59

    def test_never_converges(self):
        assert rolling_convergence_episode([1.0] * 200, target=5.0, window=10) is None

    def test_too_short(self):
        assert rolling_convergence_episode([10.0] * 5, target=1.0, window=100) is None


class TestTimeToSustained:
    def test_basic(self):
        t = list(range(10))
        v = [0, 0, 5, 5, 5, 0, 5, 5, 5, 5]
        assert time_to_sustained(t, v, threshold=5, sustain=4) == 6.0

    def test_none_when_never(self):
        assert time_to_sustained([0, 1], [1, 1], threshold=5) is None


class TestDetectPlateau:
    def test_plateau_after_ramp(self):
        values = list(np.linspace(0, 10, 200)) + [10.0] * 300
        idx = detect_plateau(values, window=50, tolerance=0.02)
        assert idx is not None
        assert 150 <= idx <= 300

    def test_flat_from_start(self):
        assert detect_plateau([5.0] * 200, window=50) == 49

    def test_never_settles(self):
        values = list(np.linspace(0, 10, 500))  # still climbing at the end
        idx = detect_plateau(values, window=50, tolerance=0.001)
        assert idx is None or idx > 400


class TestExport:
    def make_result(self):
        return ExperimentResult(
            name="demo",
            summary={"speed": 1.5, "tool": "AutoMDT"},
            tables=["| x |"],
            series={
                "a": TimeSeries("a", [(0.0, 1.0), (2.0, 3.0)]),
                "b": TimeSeries("b", [(1.0, 5.0)]),
            },
            notes=["hello"],
        )

    def test_series_to_csv(self, tmp_path):
        path = series_to_csv(self.make_result().series, tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,a,b"
        assert len(lines) == 4  # header + times {0, 1, 2}
        # b has no sample at t=0 -> empty cell.
        assert lines[1].endswith(",")

    def test_series_to_csv_empty(self, tmp_path):
        path = series_to_csv({}, tmp_path / "empty.csv")
        assert path.read_text() == "time\n"

    def test_summary_to_markdown(self):
        md = summary_to_markdown(self.make_result())
        assert "## demo" in md
        assert "| speed | 1.5 |" in md
        assert "> hello" in md

    def test_export_experiment_writes_all(self, tmp_path):
        paths = export_experiment(self.make_result(), tmp_path)
        suffixes = {p.suffix for p in paths}
        assert suffixes == {".json", ".csv", ".md"}
        for p in paths:
            assert p.exists()
