#!/usr/bin/env python3
"""Build a custom testbed and stress it with a mid-transfer throttle.

Constructs an asymmetric environment the presets don't cover — NVMe source,
slow HDD-RAID destination, busy shared WAN with background traffic — trains
an agent for it (with domain-randomized scenarios, so the policy hedges
against probe error), and then *changes the read throttle mid-transfer* (as
a sysadmin or a competing job would).  The comparison against a static
configuration tuned for the original conditions shows the robustness win:
the static optimum collapses to the throttled per-stream rate while the
trained policy's allocation keeps most of the bandwidth.

Run:  python examples/custom_testbed.py
"""

from repro.core import AutoMDT, TrainingConfig
from repro.emulator import (
    NetworkConfig,
    StorageConfig,
    Testbed,
    TestbedConfig,
)
from repro.transfer import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset
from repro.utils.tables import render_kv
from repro.utils.units import GiB


def build_testbed_config() -> TestbedConfig:
    return TestbedConfig(
        source=StorageConfig(tpt=400.0, bandwidth=4000.0, label="nvme-src"),
        destination=StorageConfig(
            tpt=120.0, bandwidth=1800.0, per_file_cost=0.01, label="hdd-raid-dst"
        ),
        network=NetworkConfig(tpt=250.0, capacity=2000.0, ramp_time=2.0, label="shared-wan"),
        sender_buffer_capacity=4.0 * GiB,
        receiver_buffer_capacity=2.0 * GiB,
        max_threads=30,
        noise_sigma=0.02,
        background_peak=200.0,
        label="custom-asymmetric",
    )


class ThrottleInjector:
    """Controller wrapper that throttles the source mid-transfer."""

    def __init__(self, inner, testbed: Testbed, at_seconds: float, new_tpt: float):
        self.inner = inner
        self.testbed = testbed
        self.at_seconds = at_seconds
        self.new_tpt = new_tpt
        self.fired = False

    def propose(self, observation):
        if not self.fired and observation.elapsed >= self.at_seconds:
            self.testbed.set_stage_tpt("read", self.new_tpt)
            self.fired = True
            print(f"  [t={observation.elapsed:.0f}s] read throttled to {self.new_tpt} Mbps!")
        return self.inner.propose(observation)

    def reset(self):
        self.inner.reset()


def main() -> None:
    config = build_testbed_config()
    print(render_kv(
        {
            "bottleneck": f"{config.bottleneck_bandwidth} Mbps (destination HDD)",
            "optimal threads": config.optimal_threads(),
        },
        title="-- custom testbed --",
    ))

    pipeline = AutoMDT(
        seed=11,
        training_config=TrainingConfig(max_episodes=3000, stagnation_episodes=700),
    )
    pipeline.explore(Testbed(config, rng=11), duration=120.0)
    print("\ntraining for the custom environment (domain-randomized) ...")
    from repro.simulator import sample_scenario
    from repro.simulator.scenarios import scenario_from_profile

    base_scenario = scenario_from_profile(
        pipeline.profile.tpt,
        pipeline.profile.bandwidth,
        sender_buffer_capacity=pipeline.profile.sender_buffer_capacity,
        receiver_buffer_capacity=pipeline.profile.receiver_buffer_capacity,
        max_threads=pipeline.profile.max_threads,
    )
    env = pipeline.make_training_env(
        scenario_sampler=lambda rng: sample_scenario(rng, base=base_scenario, jitter=0.4)
    )
    pipeline.train_offline(env)

    def run_with_throttle(controller_factory, name):
        testbed = Testbed(config, rng=12)
        controller = ThrottleInjector(
            controller_factory(), testbed, at_seconds=60.0, new_tpt=100.0
        )
        engine = ModularTransferEngine(
            testbed,
            uniform_dataset(30, 1e9, name="custom"),
            controller,
            EngineConfig(max_seconds=3600, probe_noise=0.02),
            utility_fn=pipeline.utility,
        )
        print(f"\ntransferring 30 GB with {name}; read throttled at t=60s ...")
        result = engine.run()
        tput_after = result.metrics.throughput_write.mean(
            t_start=80, t_end=result.completion_time
        )
        return result, tput_after

    from repro.baselines import StaticController

    auto, auto_after = run_with_throttle(pipeline.controller, "AutoMDT")
    static, static_after = run_with_throttle(
        lambda: StaticController(config.optimal_threads()), "a static tuned config"
    )
    print(render_kv(
        {
            "AutoMDT completion (s)": round(auto.completion_time, 1),
            "static completion (s)": round(static.completion_time, 1),
            "AutoMDT post-throttle Mbps": round(auto_after),
            "static post-throttle Mbps": round(static_after),
            "robustness speedup": f"{static.completion_time / auto.completion_time:.2f}x",
        },
        title="\n-- mid-transfer throttle: trained policy vs static optimum --",
    ))
    print(
        "\nThe static config was optimal for the original conditions but its\n"
        "5 read threads collapse to ~500 Mbps once each stream is throttled;\n"
        "the trained policy's state-conditioned allocation keeps most of the\n"
        "bandwidth without retraining."
    )


if __name__ == "__main__":
    main()
