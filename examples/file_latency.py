#!/usr/bin/env python3
"""Per-file latency analysis on the chunk-granular data plane.

The paper's Table I reports aggregate Mbps; this example uses the
file-level engine (``repro.transfer.FileLevelEngine``) to look *inside* a
transfer: when does each file actually land?  It shows three effects the
fluid model cannot resolve:

* the per-file completion CDF (half your files arrive long before the
  transfer "finishes"),
* the Mixed workload's heavier tail (small files queue behind large ones
  and pay per-file overheads),
* the straggler tail when file count barely exceeds reader concurrency —
  the reason related work adds intra-file parallelism.

Run:  python examples/file_latency.py
"""

from repro.baselines import GlobusController, StaticController
from repro.emulator import fabric_ncsa_tacc
from repro.transfer import FileLevelEngine
from repro.transfer.files import uniform_dataset
from repro.utils.tables import render_table
from repro.workloads import large_dataset, mixed_dataset


def cdf_row(result, label):
    q = result.file_latency_quantiles((0.1, 0.5, 0.9, 0.99))
    return [
        label,
        round(result.effective_throughput / 1000.0, 2),
        round(q[0.1], 1),
        round(q[0.5], 1),
        round(q[0.9], 1),
        round(q[0.99], 1),
        round(result.completion_time, 1),
    ]


def main() -> None:
    config = fabric_ncsa_tacc()
    optimal = config.optimal_threads()
    print(f"testbed: {config.label}; modular-optimal threads {optimal}\n")

    rows = []
    for name, dataset in (
        ("large 50GB", large_dataset(total_bytes=5e10)),
        ("mixed 50GB", mixed_dataset(total_bytes=5e10, rng=0)),
    ):
        for tool, controller in (
            ("modular", StaticController(optimal)),
            ("globus", GlobusController()),
        ):
            result = FileLevelEngine(config, dataset, controller).run()
            rows.append(cdf_row(result, f"{name} / {tool}"))
    print(
        render_table(
            ["workload / tool", "Gbps", "p10 (s)", "p50 (s)", "p90 (s)", "p99 (s)", "total (s)"],
            rows,
            title="per-file completion latency",
        )
    )

    print("\nstraggler tail: same 28 GB, different file counts (modular optimum)")
    for count, size in ((14, 2e9), (56, 5e8), (280, 1e8)):
        result = FileLevelEngine(
            config, uniform_dataset(count, size), StaticController(optimal)
        ).run()
        print(
            f"  {count:>4} files x {size/1e9:.1f} GB -> "
            f"{result.effective_throughput/1000:.2f} Gbps "
            f"(completion {result.completion_time:.1f}s)"
        )
    print(
        "\nFewer files than read threads leaves workers idle and the last\n"
        "files drain at single-stream speed — why tools add per-file TCP\n"
        "parallelism on top of concurrency."
    )


if __name__ == "__main__":
    main()
