#!/usr/bin/env python3
"""Fig. 5 walkthrough: the three bottleneck scenarios, AutoMDT vs Marlin.

For each scenario the paper throttles one stage's per-stream rate so a
different component needs the most concurrency:

=========  ======================  ===============
scenario   throttles (r,n,w) Mbps  optimal threads
=========  ======================  ===============
read       (80, 160, 200)          ≈ (13, 7, 5)
network    (205, 75, 195)          ≈ (5, 14, 6)
write      (200, 150, 70)          ≈ (5, 7, 15)
=========  ======================  ===============

AutoMDT identifies the bottleneck within a few probe intervals (it learned
the buffer dynamics offline); Marlin's three independent optimizers climb
slowly and keep fluctuating.  Trained checkpoints are cached under
``.artifacts/`` so the second run of this script is fast.

Run:  python examples/bottleneck_scenarios.py
"""

from repro.harness import experiment_figure5


def main() -> None:
    for scenario in ("read", "network", "write"):
        result = experiment_figure5(scenario, fast=True, seed=0)
        print(result.render())
        auto = result.series["automdt_bottleneck_threads"]
        marlin = result.series["marlin_bottleneck_threads"]
        horizon = min(30, len(auto))
        print(f"\n{scenario}-stage concurrency, first {horizon} s (AutoMDT | Marlin):")
        for i in range(0, horizon, 3):
            a = int(auto.values[i]) if i < len(auto) else "-"
            m = int(marlin.values[i]) if i < len(marlin) else "-"
            print(f"  t={int(auto.times[i]):>3}s   {a:>3}  |  {m:>3}")
        print()


if __name__ == "__main__":
    main()
