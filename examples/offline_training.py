#!/usr/bin/env python3
"""Deep-dive into the offline training pipeline (§IV, Fig. 2 + Fig. 4).

Shows what the quickstart hides:

* the exploration log statistics and derived simulator parameters;
* the training reward curve (ASCII) and the convergence criterion firing;
* the offline-vs-online cost accounting the paper argues from;
* the continuous-vs-discrete action-space comparison of Fig. 4;
* checkpoint save/load for production deployment.

Run:  python examples/offline_training.py
"""

import numpy as np

from repro.core import AutoMDT, TrainingConfig
from repro.core.discrete import DiscreteActionAdapter, DiscretePPOAgent
from repro.core.env import SimulatorEnv
from repro.core.training import train
from repro.emulator import Testbed, fabric_ncsa_tacc
from repro.utils.tables import render_kv, render_series_ascii


def main() -> None:
    config = fabric_ncsa_tacc()
    pipeline = AutoMDT(
        seed=3,
        training_config=TrainingConfig(max_episodes=2500, stagnation_episodes=600),
    )

    profile = pipeline.explore(Testbed(config, rng=3), duration=120.0)
    print(
        render_kv(
            {
                "stage ceilings B (Mbps)": tuple(round(b) for b in profile.bandwidth),
                "per-thread TPT (Mbps)": tuple(round(t) for t in profile.tpt),
                "bottleneck b": round(profile.bottleneck),
                "ideal threads n*": profile.optimal_threads(),
                "R_max (per step)": round(profile.max_reward(pipeline.utility), 1),
            },
            title="-- exploration & logging (§IV-A) --",
        )
    )

    print("\ntraining the continuous (Gaussian) agent ...")
    result = pipeline.train_offline()
    window = max(1, len(result.episode_rewards) // 100)
    smooth = np.convolve(result.episode_rewards, np.ones(window) / window, mode="valid")
    print(render_series_ascii(np.arange(len(smooth)), smooth, label="episode reward (smoothed)"))
    print(
        render_kv(
            {
                "episodes run": result.episodes_run,
                "first hit 90% R_max at episode": result.convergence_episode,
                "best reward": round(result.best_reward, 2),
                "offline wall seconds": round(result.wall_seconds, 1),
                "online equivalent (paper: 3 s/step)": f"{result.online_training_estimate() / 86400:.2f} days",
                "bandwidth an online run would burn": f"{result.online_training_estimate() * profile.bottleneck * 1e6 / 8 / 1e12:.1f} TB",
            },
            title="-- Algorithm 2 outcome --",
        )
    )

    print("\ntraining the factorized discrete-action variant on the same budget ...")
    disc_env = DiscreteActionAdapter(SimulatorEnv.from_profile(profile, rng=3))
    disc_agent = DiscretePPOAgent(max_threads=profile.max_threads, rng=3)
    disc = train(
        disc_agent,
        disc_env,
        TrainingConfig(max_episodes=1500, stagnation_episodes=1500),
    )
    print(
        render_kv(
            {
                "continuous best reward": round(result.best_reward, 2),
                "factorized discrete best reward": round(disc.best_reward, 2),
                "factorized discrete converged": disc.convergence_episode is not None,
            },
            title="-- discrete vs continuous (see EXPERIMENTS.md on Fig. 4) --",
        )
    )
    print(
        "Note: the paper reports discrete actions 'failed miserably'; under\n"
        "this repo's batched training loop the factorized categorical\n"
        "converges — an honest reproduction divergence analysed in\n"
        "EXPERIMENTS.md (the joint n_max^3 space is compared in figure4)."
    )

    path = ".artifacts/example-offline-training"
    pipeline.save(path)
    fresh = AutoMDT(seed=99)
    fresh.load(path)
    print(f"\ncheckpoint saved to {path}.npz and reloaded; "
          f"controller ready: {type(fresh.controller()).__name__}")


if __name__ == "__main__":
    main()
