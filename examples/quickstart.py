#!/usr/bin/env python3
"""Quickstart: train AutoMDT offline and run one transfer with it.

The full paper pipeline in ~40 lines:

1. build an (emulated) testbed — here the paper's read-bottleneck scenario,
   a 1 Gbps path with per-stream throttles (80, 160, 200) Mbps;
2. run the 10-minute random-threads exploration (shortened here);
3. train the PPO agent offline in the Algorithm-1 simulator;
4. deploy the policy as a transfer controller and move a 25 GB dataset.

Run:  python examples/quickstart.py
"""

from repro.core import AutoMDT, TrainingConfig
from repro.emulator import Testbed, fig5_read_bottleneck
from repro.transfer import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset
from repro.utils.tables import render_kv, render_series_ascii
from repro.utils.units import format_rate


def main() -> None:
    config = fig5_read_bottleneck()
    print(f"testbed: {config.label}, optimal threads {config.optimal_threads()}")

    # 1-2. Exploration: measure per-stage ceilings and per-thread speeds.
    pipeline = AutoMDT(
        seed=7,
        training_config=TrainingConfig(max_episodes=2500, stagnation_episodes=600),
    )
    profile = pipeline.explore(Testbed(config, rng=7), duration=120.0)
    print(
        render_kv(
            {
                "measured bottleneck": format_rate(profile.bottleneck),
                "measured TPT (r,n,w)": tuple(round(t, 1) for t in profile.tpt),
                "derived optimal threads": profile.optimal_threads(),
            },
            title="\n-- exploration profile (§IV-A) --",
        )
    )

    # 3. Offline training in the simulator (Algorithm 2).
    print("\ntraining offline (a couple of minutes on one core)...")
    result = pipeline.train_offline()
    print(
        render_kv(
            {
                "episodes": result.episodes_run,
                "best episode reward": f"{result.best_reward:.2f} / {result.max_episode_reward}",
                "converged (>=90% R_max)": result.converged,
                "wall time (s)": round(result.wall_seconds, 1),
                "equivalent online time (days)": round(
                    result.online_training_estimate() / 86400, 2
                ),
            },
            title="-- offline training (§IV-E) --",
        )
    )

    # 4. Production transfer (§IV-F).
    dataset = uniform_dataset(25, 1e9, name="demo")
    engine = ModularTransferEngine(
        Testbed(config, rng=8),
        dataset,
        pipeline.controller(),
        EngineConfig(max_seconds=1200, probe_noise=0.02),
        utility_fn=pipeline.utility,
    )
    transfer = engine.run()
    print(
        render_kv(
            {
                "completed": transfer.completed,
                "completion time (s)": round(transfer.completion_time, 1),
                "effective throughput": format_rate(transfer.effective_throughput),
                "mean total threads": round(transfer.metrics.concurrency_cost(), 1),
            },
            title="\n-- production transfer --",
        )
    )
    m = transfer.metrics
    print()
    print(
        render_series_ascii(
            m.throughput_write.times, m.throughput_write.values,
            label="write throughput (Mbps) over the transfer",
        )
    )


if __name__ == "__main__":
    main()
