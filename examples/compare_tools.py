#!/usr/bin/env python3
"""Table I reproduction: Globus vs Marlin vs AutoMDT end-to-end speed.

Transfers the paper's two datasets (scaled to 100 GB by default so the
example finishes quickly; pass --full for the full 1 TB) over the emulated
NCSA→TACC FABRIC pair and prints the Table I rows plus the speedup ratios
the paper quotes (AutoMDT 6.57x/1.33x over Globus/Marlin on the Large set,
7.28x/1.23x on Mixed).

Run:  python examples/compare_tools.py [--full]
"""

import argparse

from repro.harness import experiment_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="full 1 TB datasets")
    args = parser.parse_args()

    result = experiment_table1(fast=not args.full, seed=0)
    print(result.render())
    print()
    s = result.summary
    print("speedups (AutoMDT vs Globus / vs Marlin):")
    print(
        f"  Large: {s['large_automdt_vs_globus']}x / {s['large_automdt_vs_marlin']}x"
        f"   (paper: {s['paper_large_ratios'][0]}x / {s['paper_large_ratios'][1]}x)"
    )
    print(
        f"  Mixed: {s['mixed_automdt_vs_globus']}x / {s['mixed_automdt_vs_marlin']}x"
        f"   (paper: {s['paper_mixed_ratios'][0]}x / {s['paper_mixed_ratios'][1]}x)"
    )


if __name__ == "__main__":
    main()
