"""Data-plane fast path: vectorized checksum kernels vs the pure-python oracle.

The integrity layer digests every chunk, so checksum throughput bounds
how small chunks can get before verification dominates transfer-loop
cost.  This bench measures MB/s for each kernel pair on 4MB buffers
(the new default chunk size), proves the vectorized kernels bit-identical
to the embedded pure-python baseline (pinned reference vectors, a seeded
random sweep, streaming splits, and the batch arena kernels), and
re-measures end-to-end verification overhead at 4MB chunks.

Run standalone (what the CI ``bench-smoke`` dataplane leg does)::

    PYTHONPATH=src python benchmarks/bench_dataplane.py --quick --min-speedup 10

writes ``BENCH_dataplane.json`` at the repo root and exits 1 if digests
mismatch or vectorized CRC32C is below ``--min-speedup`` times the pure
baseline.  Full mode additionally gates the ≤5% verification-overhead
budget (quick mode still reports it, but with too few pairs to gate on
a shared CI runner).  Also collectable by pytest.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.utils.checksum import (
    Crc32cStream,
    Xxh32Stream,
    crc32c_many,
    crc32c_np,
    crc32c_py,
    kernel_info,
    xxh32_many,
    xxh32_np,
    xxh32_py,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SCHEMA = 1

CHUNK_BYTES = 4_000_000  # the IntegrityConfig default chunk size

# Known-answer vectors (iSCSI CRC32C check value; reference xxHash32).
PINNED = {
    "crc32c": [
        (b"", 0x00000000),
        (b"a", 0xC1D04330),
        (b"abc", 0x364B3FB7),
        (b"123456789", 0xE3069283),
        (b"\x00" * 32, 0x8A9136AA),
    ],
    "xxh32": [
        (b"", 0x02CC5D05),
        (b"a", 0x550D7456),
        (b"abc", 0x32D153FF),
        (b"123456789", 0x937BAD67),
    ],
}

KERNELS = {
    "crc32c": (crc32c_np, crc32c_py),
    "xxh32": (xxh32_np, xxh32_py),
}


def _mb_per_s(fn, data: bytes, *, repeats: int) -> float:
    fn(data)  # warm-up: table builds, allocator, branch predictors
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(data)
        best = min(best, time.perf_counter() - t0)
    return len(data) / best / 1e6


def _equivalence_checks(*, sweep: int) -> dict:
    """Bit-identity of every vectorized surface against the pure oracle."""
    rng = random.Random(1234)
    checks: dict[str, bool] = {}

    for name, (vec, pure) in KERNELS.items():
        checks[f"{name}_pinned"] = all(
            vec(data) == want == pure(data) for data, want in PINNED[name]
        )

    # Seeded sweep: small lengths exhaust every tail-lane case; a few
    # larger buffers hit the blockwise/fold paths.
    buffers = [rng.randbytes(n) for n in range(min(sweep, 600))]
    buffers += [rng.randbytes(rng.randrange(1 << 12, 1 << 16)) for _ in range(8)]
    checks["crc32c_sweep"] = all(crc32c_np(b) == crc32c_py(b) for b in buffers)
    checks["xxh32_sweep"] = all(xxh32_np(b) == xxh32_py(b) for b in buffers)

    # Streaming over random split points == whole-buffer digest.
    data = rng.randbytes(50_000)
    for name, stream_cls, pure in (
        ("crc32c_stream", Crc32cStream, crc32c_py),
        ("xxh32_stream", Xxh32Stream, xxh32_py),
    ):
        stream, i = stream_cls(), 0
        while i < len(data):
            j = min(len(data), i + rng.randrange(1, 8192))
            stream.update(data[i:j])
            i = j
        checks[name] = stream.digest() == pure(data)

    # Batch arena kernels == per-buffer oracle (incl. empty records).
    records = [b"", b"x"] + [rng.randbytes(rng.randrange(0, 3000)) for _ in range(64)]
    offsets, lengths, pos = [], [], 0
    for rec in records:
        offsets.append(pos)
        lengths.append(len(rec))
        pos += len(rec)
    arena = b"".join(records)
    checks["crc32c_many"] = list(crc32c_many(arena, offsets, lengths)) == [
        crc32c_py(r) for r in records
    ]
    checks["xxh32_many"] = list(xxh32_many(arena, offsets, lengths)) == [
        xxh32_py(r) for r in records
    ]
    return checks


def _measure_overhead(*, quick: bool) -> dict:
    """End-to-end verification overhead at 4MB chunks (bench_integrity)."""
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        from bench_integrity import measure_overhead
    finally:
        sys.path.pop(0)
    report = measure_overhead(pairs=3 if quick else 8, chunk_size=float(CHUNK_BYTES))
    return {
        "chunk_size": report["chunk_size"],
        "chunks_per_run": report["chunks_per_run"],
        "pairs": report["pairs"],
        "overhead": report["overhead"],
        "verify_mb_per_s": report["verify_mb_per_s"],
        "within_budget": report["overhead"] < 0.05,
    }


def run_bench(*, quick: bool = False, min_speedup: float = 20.0,
              skip_overhead: bool = False, out: str | Path | None = None) -> dict:
    """Kernel throughput + equivalence + overhead; writes ``BENCH_dataplane.json``."""
    rng = random.Random(99)
    buffer = rng.randbytes(CHUNK_BYTES)
    # The pure-python oracle is a byte loop — MB/s is size-independent,
    # so quick mode times it on a slice to keep CI wall time down.
    pure_buffer = buffer[: len(buffer) // 8] if quick else buffer
    repeats = 2 if quick else 5

    report: dict = {
        "bench": "dataplane",
        "schema": SCHEMA,
        "quick": quick,
        "buffer_bytes": len(buffer),
        "pure_buffer_bytes": len(pure_buffer),
        "kernel_info": kernel_info(),
    }
    for name, (vec, pure) in KERNELS.items():
        vec_rate = _mb_per_s(vec, buffer, repeats=repeats)
        pure_rate = _mb_per_s(pure, pure_buffer, repeats=max(1, repeats - 1))
        report[name] = {
            "vectorized_mb_per_s": round(vec_rate, 1),
            "pure_mb_per_s": round(pure_rate, 2),
            "speedup": round(vec_rate / pure_rate, 1),
        }

    checks = _equivalence_checks(sweep=200 if quick else 600)
    report["equivalence"] = checks
    report["digests_identical"] = all(checks.values())

    if not skip_overhead:
        report["verification"] = _measure_overhead(quick=quick)

    speedup_ok = report["crc32c"]["speedup"] >= min_speedup
    overhead_ok = (
        skip_overhead or quick or report["verification"]["within_budget"]
    )
    report["min_speedup"] = min_speedup
    report["ok"] = bool(report["digests_identical"] and speedup_ok and overhead_ok)

    out = Path(out) if out is not None else REPO_ROOT / "BENCH_dataplane.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    report["out"] = str(out)

    from repro.obs.store import record_bench_report

    record_bench_report(report, path=out)
    return report


def test_dataplane_bench_quick(tmp_path):
    """Pytest entry: quick-mode kernels must be ≥10× with identical digests."""
    report = run_bench(quick=True, min_speedup=10.0, skip_overhead=True,
                       out=tmp_path / "BENCH_dataplane.json")
    assert report["ok"], report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller buffers/fewer pairs (CI smoke)")
    parser.add_argument("--min-speedup", type=float, default=20.0,
                        help="required vectorized/pure CRC32C ratio")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the end-to-end verification-overhead leg")
    parser.add_argument("--out", default=None, help="report path (default: repo root)")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    report = run_bench(quick=args.quick, min_speedup=args.min_speedup,
                       skip_overhead=args.skip_overhead, out=args.out)
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        print(
            f"FAIL: digests_identical={report['digests_identical']} "
            f"crc32c_speedup={report['crc32c']['speedup']} "
            f"(min {args.min_speedup})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
