"""Self-measured telemetry overhead: instrumented vs bare transfer loop.

The observability layer (``repro.obs``) promises to cost **< 3%** of
transfer throughput when enabled and ~nothing when disabled.  This bench
enforces that budget with an estimator that survives noisy shared
machines: each run is timed with ``time.process_time`` (CPU seconds of
this process — other tenants and scheduler preemption don't count), runs
alternate in tight off/on pairs so frequency drift hits both arms, and
the reported overhead is the **median of per-pair CPU-time ratios**.
Wall-clock minima are reported alongside for reference.

Run standalone (what the CI ``bench-smoke`` job does)::

    PYTHONPATH=src python benchmarks/bench_observability.py --quick --out /tmp/obs-run

exits 1 if measured overhead exceeds ``--budget`` (default 0.03), printing
a JSON report either way.  Also collectable by pytest, where the same
measurement runs in quick mode.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.baselines.static import StaticController
from repro.emulator.presets import fig5_read_bottleneck
from repro.emulator.testbed import Testbed
from repro.transfer.engine import EngineConfig, ModularTransferEngine
from repro.workloads import large_dataset


def _build_engine(seed: int = 0) -> ModularTransferEngine:
    config = fig5_read_bottleneck()
    return ModularTransferEngine(
        Testbed(config, rng=seed),
        large_dataset(total_bytes=200e9),
        StaticController((8, 8, 8)),
        # Budget never binds: the bench measures loop cost, not completion.
        EngineConfig(max_seconds=1e9, probe_noise=0.01, seed=seed),
    )


def _timed_run(engine: ModularTransferEngine, run_dir: Path | None) -> tuple[float, float]:
    """One full transfer; returns (cpu, wall) seconds (telemetry iff run_dir).

    CPU time is the budget metric: the transfer loop is compute-bound, and
    on a shared machine wall time mostly measures the neighbours.
    """
    if run_dir is None:
        c0, t0 = time.process_time(), time.perf_counter()
        engine.run()
        return time.process_time() - c0, time.perf_counter() - t0
    with obs.session(run_dir, label="bench_observability"):
        c0, t0 = time.process_time(), time.perf_counter()
        engine.run()
        return time.process_time() - c0, time.perf_counter() - t0


def measure_overhead(*, pairs: int = 20, out_dir: str | Path = "/tmp/obs-bench") -> dict:
    """Tightly-paired off/on timing; returns the report dict.

    ``overhead`` is ``median(on_i / off_i) - 1`` over ``pairs`` adjacent
    (bare, instrumented) run pairs, on CPU time.  ``self_measured_fraction``
    is what the session *thinks* it cost (serialisation + write time over
    run CPU); with deferred serialisation most of that is paid after the
    transfer loop, so it need not bound the externally measured figure.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    engine = _build_engine()
    # Warm-up: one bare + one instrumented transfer pays one-time costs
    # (numpy init, module imports, file creation) outside the timed pairs.
    _timed_run(engine, None)
    _timed_run(engine, out_dir / "warmup")

    ratios: list[float] = []
    off_cpu: list[float] = []
    on_cpu: list[float] = []
    off_wall: list[float] = []
    on_wall: list[float] = []
    self_fracs: list[float] = []
    for i in range(pairs):
        cpu_off, wall_off = _timed_run(engine, None)
        run_dir = out_dir / f"run{i % 4}"
        events = run_dir / obs.EVENTS_FILENAME
        if events.exists():
            events.unlink()
        cpu_on, wall_on = _timed_run(engine, run_dir)
        off_cpu.append(cpu_off)
        on_cpu.append(cpu_on)
        off_wall.append(wall_off)
        on_wall.append(wall_on)
        ratios.append(cpu_on / cpu_off)
        sess_overhead = _read_overhead(events)
        if sess_overhead is not None:
            self_fracs.append(sess_overhead / cpu_on)

    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    return {
        "bench": "observability",
        "schema": 1,
        "pairs": pairs,
        "intervals_per_run": int(engine.last_observation.elapsed),
        "best_off_cpu_s": round(min(off_cpu), 4),
        "best_on_cpu_s": round(min(on_cpu), 4),
        "best_off_wall_s": round(min(off_wall), 4),
        "best_on_wall_s": round(min(on_wall), 4),
        "overhead": round(median_ratio - 1.0, 5),
        "overhead_best_cpu": round(min(on_cpu) / min(off_cpu) - 1.0, 5),
        "self_measured_fraction": round(min(self_fracs), 5) if self_fracs else None,
        "events_dir": str(out_dir),
    }


def _read_overhead(events_path: Path) -> float | None:
    """The closing meta record's self-measured ``overhead_seconds``."""
    from repro.obs.events import read_events

    for record in reversed(read_events(events_path)):
        if record.get("type") == "meta" and "overhead_seconds" in record:
            return float(record["overhead_seconds"])
    return None


def test_overhead_budget(tmp_path):
    """Pytest entry: quick-mode measurement must meet the 3% budget."""
    report = measure_overhead(pairs=12, out_dir=tmp_path)
    assert report["overhead"] < 0.03, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer pairs (CI smoke)")
    parser.add_argument("--pairs", type=int, default=None, help="override pair count")
    parser.add_argument("--out", default="/tmp/obs-bench", help="run directory root")
    parser.add_argument("--budget", type=float, default=0.03, help="max overhead fraction")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    pairs = args.pairs if args.pairs is not None else (12 if args.quick else 30)
    report = measure_overhead(pairs=pairs, out_dir=args.out)
    report["budget"] = args.budget
    report["within_budget"] = report["overhead"] < args.budget

    from repro.obs.store import record_bench_report

    record_bench_report(report)
    print(json.dumps(report, indent=2))
    if not report["within_budget"]:
        print(
            f"FAIL: telemetry overhead {report['overhead']:.2%} exceeds "
            f"budget {args.budget:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
