"""§V-A — offline training cost, plus the stacked policy-engine gate.

Two independent parts:

* ``test_training_offline_vs_online`` (pytest-benchmark) — paper: ~45 min
  offline in the simulator vs ~7 days online (3 s per online iteration);
  convergence at ~20,150 episodes at paper scale; an online run would burn
  petabytes of bandwidth.  At the scaled-down profile we assert the same
  *structure*: convergence by the paper's criterion, and an offline/online
  cost ratio of several orders of magnitude.
* ``policy_steps`` — the population-vectorized policy engine
  (:class:`repro.nn.stacked.StackedPPOAgent`): K members acting *and*
  updating through stacked ``(K, in, out)`` weights, one ``np.matmul``
  per layer, vs K scalar ``PPOAgent`` loops over the identical synthetic
  rollout schedule.  Writes ``BENCH_training.json`` (schema 1, like the
  other ``BENCH_*`` artifacts).  Gated: per-member results bit-identical
  to the scalar oracle, and ≥ 5× act+update throughput at the best
  K ≥ 16 arm.  The gated profile is deliberately dispatch-bound
  (hidden 24, small batches — the scaled-down population-training shape
  the repo's tests train, where Python dispatch dominates); as the nets
  widen the per-layer GEMMs grow until BLAS time, not dispatch,
  dominates and the stacked win shrinks — the report carries ungated
  ``hidden64`` and ``hidden256`` arms informationally for exactly that
  honesty (see DESIGN §17).

Run standalone (what the CI ``bench-smoke`` job does)::

    PYTHONPATH=src python benchmarks/bench_training.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.harness import experiment_training

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_training_offline_vs_online(benchmark, fast_flag):
    result = run_once(benchmark, experiment_training, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # The agent converged by the 90%-of-R_max criterion.
    assert s["converged"]
    assert s["convergence_episode"] is not None
    assert s["best_reward"] >= 0.9 * s["max_episode_reward"]

    # Offline simulator training is orders of magnitude cheaper than the
    # online equivalent (paper: 45 min vs 7 days ≈ 220x; require >= 50x).
    assert s["offline_speedup_x"] >= 50

    # An online run of the same budget would waste serious bandwidth.
    assert s["online_wasted_bytes_tb"] > 10.0


# ----------------------------------------------------- policy-engine section
def _rollout_schedule(k: int, episodes: int, steps: int):
    """One synthetic (states, rewards) schedule both engines replay."""
    rng = np.random.default_rng(12345)
    states = rng.uniform(0.0, 1.0, (episodes, steps, k, 8))
    rewards = rng.uniform(0.0, 1.0, (episodes, steps, k))
    return states, rewards


def _drive_members(agents, states, rewards, *, episodes_per_update: int) -> float:
    """K scalar agents acting/storing/updating — the per-member baseline."""
    episodes, steps, _k, _dim = states.shape
    gamma = agents[0].config.gamma
    t0 = time.perf_counter()
    for e in range(episodes):
        for s in range(steps):
            row = states[e, s]
            for i, agent in enumerate(agents):
                action, log_prob = agent.act(row[i])
                agent.memory.store(row[i], action, log_prob, rewards[e, s, i])
        for agent in agents:
            agent.memory.end_episode(gamma)
        if (e + 1) % episodes_per_update == 0:
            for agent in agents:
                agent.update()
                agent.memory.clear()
    return time.perf_counter() - t0


def _drive_stacked(stacked, states, rewards, *, episodes_per_update: int) -> float:
    """The same schedule through act_all/update_all."""
    episodes, steps, k, _dim = states.shape
    gamma = stacked.config.gamma
    t0 = time.perf_counter()
    for e in range(episodes):
        for s in range(steps):
            row = states[e, s]
            acts, lps = stacked.act_all(row)
            for i in range(k):
                stacked.members[i].memory.store(
                    row[i], acts[i].copy(), float(lps[i]), rewards[e, s, i]
                )
        for member in stacked.members:
            member.memory.end_episode(gamma)
        if (e + 1) % episodes_per_update == 0:
            stacked.update_all(np.arange(k))
            for member in stacked.members:
                member.memory.clear()
    return time.perf_counter() - t0


def _run_arm(*, k: int, hidden_dim: int, episodes: int, steps: int,
             episodes_per_update: int, ppo_kwargs: dict | None = None) -> dict:
    """Time per-member vs stacked over identical rollouts; check identity."""
    from repro.core.ppo import PPOAgent, PPOConfig
    from repro.nn.stacked import StackedPPOAgent

    cfg = PPOConfig(
        hidden_dim=hidden_dim, policy_blocks=2, value_blocks=2,
        **(ppo_kwargs or {}),
    )
    seeds = [9000 + 13 * i for i in range(k)]
    states, rewards = _rollout_schedule(k, episodes, steps)

    members = [PPOAgent(8, 3, cfg, rng=s) for s in seeds]
    member_wall = _drive_members(
        members, states, rewards, episodes_per_update=episodes_per_update
    )
    stacked = StackedPPOAgent(8, 3, cfg, rngs=seeds)
    stacked_wall = _drive_stacked(
        stacked, states, rewards, episodes_per_update=episodes_per_update
    )

    # Same seeds + same schedule: every parameter must come out bit-equal.
    identical = True
    for want, got in zip(members, stacked.members):
        for net in ("policy", "value"):
            for key, value in getattr(want, net).state_dict().items():
                identical = identical and np.array_equal(
                    getattr(got, net).state_dict()[key], value
                )
    total = episodes * steps * k
    return {
        "k": k,
        "hidden_dim": hidden_dim,
        "transitions": total,
        "per_member_wall_s": round(member_wall, 4),
        "stacked_wall_s": round(stacked_wall, 4),
        "per_member_steps_per_s": round(total / member_wall, 1),
        "stacked_steps_per_s": round(total / stacked_wall, 1),
        "speedup": round(member_wall / stacked_wall, 2),
        "bit_identical": bool(identical),
    }


def bench_policy_steps(*, ks: tuple[int, ...] = (1, 16, 64), episodes: int = 4,
                       steps: int = 10, episodes_per_update: int = 2,
                       min_speedup: float = 5.0, hidden_dim: int = 24,
                       with_wide_arms: bool = True) -> dict:
    """Stacked-K acting + updating vs K per-member loops, gated at K ≥ 16.

    ``speedup`` per arm is wall-clock of K scalar agents over the stacked
    engine on the *identical* synthetic rollout schedule (same seeds, same
    states/rewards, same update cadence), so it isolates engine dispatch,
    not workload differences.  Bit-identity of every resulting parameter
    is asserted per arm — the speedup is of the same computation, not an
    approximation of it.

    The gated arms run hidden 24 / 2+2 blocks — the scaled-down profile
    the repo's population tests actually train (see
    ``test_population_batched_winner_fingerprint_second_config``), where
    Python dispatch dominates and stacking pays most.  Wider nets shift
    the balance toward BLAS: the ungated ``hidden64``/``hidden256`` arms
    report that decay honestly (~2–4× and ~1×) instead of hiding it.
    """
    # Keyed by arm (not a list): ``automdt regress`` flattens mappings
    # only, so this is what puts each arm's speedup under the gate.
    arms = {
        f"k{k}": _run_arm(
            k=k, hidden_dim=hidden_dim, episodes=episodes, steps=steps,
            episodes_per_update=episodes_per_update,
        )
        for k in ks
    }
    gated = [a["speedup"] for a in arms.values() if a["k"] >= 16]
    report = {
        "episodes": episodes,
        "steps_per_episode": steps,
        "arms": arms,
        "speedup_floor": min_speedup,
        "bit_identical": bool(all(a["bit_identical"] for a in arms.values())),
        "target_ok": bool(gated and max(gated) >= min_speedup),
    }
    if with_wide_arms:
        # Informational, not gated: as the per-layer GEMMs grow, BLAS time
        # (which stacking cannot reduce) swamps dispatch (which it does),
        # so the win narrows — reported so nobody mistakes the K≥16 gate
        # for a claim about wide networks.  The ``speedup_ungated`` key
        # name keeps these arms out of regress's higher-is-better gate.
        for name, arm in (
            ("hidden64", _run_arm(
                k=16, hidden_dim=64, episodes=episodes, steps=steps,
                episodes_per_update=episodes_per_update,
            )),
            ("hidden256", _run_arm(
                k=8, hidden_dim=256, episodes=2, steps=steps,
                episodes_per_update=episodes_per_update,
            )),
        ):
            arm["speedup_ungated"] = arm.pop("speedup")
            report[name] = arm
    return report


def run_bench(*, quick: bool = False, out: str | Path | None = None) -> dict:
    section = bench_policy_steps(
        ks=(1, 16) if quick else (1, 16, 64),
        episodes=2 if quick else 4,
        with_wide_arms=not quick,
    )
    report = {
        "bench": "training",
        "schema": 1,
        "quick": quick,
        "policy_steps": section,
        "ok": bool(section["bit_identical"] and section["target_ok"]),
    }
    out = Path(out) if out is not None else REPO_ROOT / "BENCH_training.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    report["out"] = str(out)

    from repro.obs.store import record_bench_report

    record_bench_report(report, path=out)
    return report


def test_training_policy_steps_quick(tmp_path):
    """Pytest entry: the identity + speedup gates must hold in quick mode."""
    report = run_bench(quick=True, out=tmp_path / "BENCH_training.json")
    assert report["ok"], report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller budgets (CI smoke)")
    parser.add_argument("--out", default=None, help="report path (default: repo root)")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    report = run_bench(quick=args.quick, out=args.out)
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        print("FAIL: stacked engine missed bit-identity or its speedup floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
