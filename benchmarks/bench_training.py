"""§V-A — offline training cost vs hypothetical online training.

Paper: ~45 min offline in the simulator vs ~7 days online (3 s per online
iteration); convergence at ~20,150 episodes at paper scale; an online run
would burn petabytes of bandwidth.  At the scaled-down profile we assert
the same *structure*: convergence by the paper's criterion, and an
offline/online cost ratio of several orders of magnitude.
"""

from conftest import run_once

from repro.harness import experiment_training


def test_training_offline_vs_online(benchmark, fast_flag):
    result = run_once(benchmark, experiment_training, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # The agent converged by the 90%-of-R_max criterion.
    assert s["converged"]
    assert s["convergence_episode"] is not None
    assert s["best_reward"] >= 0.9 * s["max_episode_reward"]

    # Offline simulator training is orders of magnitude cheaper than the
    # online equivalent (paper: 45 min vs 7 days ≈ 220x; require >= 50x).
    assert s["offline_speedup_x"] >= 50

    # An online run of the same budget would waste serious bandwidth.
    assert s["online_wasted_bytes_tb"] > 10.0
