"""§IV-D1 ablation — the buffer-occupancy state components.

Paper: with only thread counts and throughputs "the agent may get confused
because the same state can yield different rewards" — the unused-buffer
inputs disambiguate the dynamics.  We train the same agent with and without
those inputs on the same budget and assert the full state never loses.
"""

from conftest import run_once

from repro.harness import experiment_state_ablation


def test_buffer_states_matter(benchmark, fast_flag):
    result = run_once(benchmark, experiment_state_ablation, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # The full state space trains at least as well as the masked one.
    assert s["buffer_states_help"]
    # And the full agent reaches the convergence criterion.
    assert s["full_best_reward"] >= 8.5
