"""Fig. 3 — AutoMDT vs Marlin, NCSA→TACC, 100 × 1 GB.

Paper numbers: Marlin finishes in 74 s vs AutoMDT 44 s (~1.7x slower);
AutoMDT reaches network concurrency 20 within ~7 s while Marlin reaches 14
only at ~62 s.  Shape assertions: AutoMDT wins clearly on completion time
and reaches high network concurrency much sooner.
"""

from conftest import run_once

from repro.harness import experiment_figure3


def test_figure3_automdt_vs_marlin(benchmark, fast_flag):
    result = run_once(benchmark, experiment_figure3, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # AutoMDT completes the transfer faster (paper: 1.68x).
    assert s["marlin_vs_automdt_ratio"] > 1.15
    # AutoMDT ramps to the target concurrency within seconds.
    assert s["automdt_time_to_net20_s"] is not None
    assert s["automdt_time_to_net20_s"] <= 15.0
    # Marlin needs several times longer to approach the same region.
    if s["marlin_time_to_net14_s"] is not None:
        assert s["marlin_time_to_net14_s"] >= 2 * s["automdt_time_to_net20_s"]
    # AutoMDT sustains most of the 25 Gbps bottleneck on a 100 GB transfer.
    assert s["automdt_throughput_mbps"] > 15000.0
