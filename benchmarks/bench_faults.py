"""Fault injection — supervised vs unsupervised engines under each fault class.

Robustness extension beyond the paper: the production loop of §IV-F assumes
a healthy data plane, but the dynamic factors it lists (background traffic,
I/O contention) are what causes link flaps, storage stalls and lost reports
on real DTNs.  These benchmarks assert the shape-level resilience claims:
connection-killing faults hang the bare engine until its budget runs out,
while the supervised engine detects the stall, retries with backoff, and
resumes from checkpoint without re-transferring completed bytes.
"""

from conftest import run_once

from repro.harness import experiment_faults


def test_link_flap(benchmark, fast_flag):
    result = run_once(benchmark, experiment_faults, fault="link_flap", fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})
    # The bare engine hangs on the dead connections until max_seconds.
    assert not s["unsupervised_completed"]
    assert s["unsupervised_timed_out"]
    # The supervised engine detects, resumes and completes — much earlier.
    assert s["supervised_completed"]
    assert s["supervised_time_s"] < s["unsupervised_time_s"]
    assert s["incidents_detected"] >= 1
    assert s["incidents_recovered"] >= 1
    assert s["supervised_retries"] >= 1


def test_receiver_restart(benchmark, fast_flag):
    result = run_once(
        benchmark, experiment_faults, fault="receiver_restart", fast=fast_flag, seed=0
    )
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})
    # Staged bytes died with the receiver: the bare engine can never finish.
    assert not s["unsupervised_completed"]
    # The supervisor re-sends only the lost bytes and completes.
    assert s["supervised_completed"]
    assert s["incidents_recovered"] >= 1


def test_storage_stall(benchmark, fast_flag):
    result = run_once(benchmark, experiment_faults, fault="storage_stall", fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})
    # A storage stall self-recovers, so both engines finish —
    # supervision must not make the transfer materially slower.
    assert s["unsupervised_completed"]
    assert s["supervised_completed"]
    assert s["supervised_time_s"] <= s["unsupervised_time_s"] + 15.0
    # But only the supervised run accounts for the incident.
    assert s["incidents_detected"] >= 1
    assert s["mean_time_to_detect_s"] is not None


def test_probe_dropout(benchmark, fast_flag):
    result = run_once(benchmark, experiment_faults, fault="probe_dropout", fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})
    # NaN probe readings must not break either controller path (the
    # hardened policy state builder and the GuardedController both apply).
    assert s["unsupervised_completed"]
    assert s["supervised_completed"]


def test_report_loss(benchmark, fast_flag):
    result = run_once(benchmark, experiment_faults, fault="report_loss", fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})
    # Stale buffer reports degrade information, not correctness.
    assert s["unsupervised_completed"]
    assert s["supervised_completed"]


def test_fault_schedules_deterministic(benchmark, fast_flag):
    """Same seed → byte-identical outcome, incidents and recovery timings."""

    def both():
        return (
            experiment_faults("link_flap", fast=fast_flag, seed=0).summary,
            experiment_faults("link_flap", fast=fast_flag, seed=0).summary,
        )

    first, second = run_once(benchmark, both)
    assert first == second
