"""§V-C — online fine-tuning is a negligible improvement.

Paper: 120 online episodes of fine-tuning bought ~1% less concurrency at
the same transfer speed, so fine-tuning was dropped from the pipeline.
Shape assertions: reward change is small, concurrency change is small —
the offline model is already deployment-quality.
"""

from conftest import run_once

from repro.harness import experiment_finetune


def test_finetune_gain_is_negligible(benchmark, fast_flag):
    result = run_once(benchmark, experiment_finetune, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # Transfer speed is essentially unchanged (paper: "the same speed").
    assert abs(s["reward_change_pct"]) < 12.0
    # Fine-tuning never blows concurrency *up*; at the scaled training
    # budget it may trim noticeably more than the paper's 1% (the offline
    # policy starts further from optimal than a 30k-episode one), so the
    # bound is loose in the trimming direction.
    assert s["concurrency_reduction_pct"] > -10.0
    assert s["concurrency_reduction_pct"] < 40.0
    # The offline baseline was already good.
    assert s["base_mean_reward"] > 0.7
