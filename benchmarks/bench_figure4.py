"""Fig. 4 — continuous vs discrete action spaces.

The paper reports the discrete action space "failed miserably".  Our
measurement (an honest divergence, see EXPERIMENTS.md): with batched,
advantage-normalized PPO updates all three designs — continuous Gaussian,
factorized categorical, and even the joint categorical over 20³ = 8,000
triples — reach the sustained 90%-of-R_max criterion on the same budget.
The assertions below pin down what *is* reproducible about the comparison:
every variant trains, the continuous agent reaches a high sustained level,
and the full measured numbers are attached as benchmark extra_info for the
record.
"""

from conftest import run_once

from repro.harness import experiment_figure4


def test_figure4_action_space_comparison(benchmark, fast_flag):
    result = run_once(benchmark, experiment_figure4, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    r_max = s["max_episode_reward"]
    # The continuous (paper's) design trains to a high sustained level.
    assert s["continuous_tail_mean"] >= 0.8 * r_max
    # All variants produce finite, sane learning outcomes.
    for key in ("continuous", "joint_discrete", "factorized_discrete"):
        assert 0.0 < s[f"{key}_tail_mean"] <= r_max * 1.01
        assert s[f"{key}_best_reward"] <= r_max * 1.01
    # Divergence record: under this training loop the discrete variants do
    # NOT collapse (the paper's Fig. 4 shows them failing).  If this ever
    # flips, EXPERIMENTS.md needs updating — hence asserted explicitly.
    assert s["factorized_discrete_rolling_convergence"] is not None
    assert s["joint_discrete_rolling_convergence"] is not None