"""Process-pool benchmark: serial vs parallel sweeps + simulator hot path.

Three sections, one machine-readable report (``BENCH_parallel.json`` at the
repo root, like the other ``BENCH_*.json`` artifacts):

* ``sweep`` — a real multi-seed experiment sweep (``figure1``) through
  :func:`repro.harness.multirun.run_seeded`, serial vs ``--workers``
  processes.  CPU-bound: the speedup ceiling is the machine's core count,
  which the report records.  On a single-core runner the leg is marked
  ``skipped_single_core`` — pool overhead with no cores to overlap would
  read as a regression it isn't.
* ``io_bound`` — the same pool driving sleep-dominated tasks, isolating
  the orchestration overhead from the compute ceiling: even on one core
  the pool overlaps waiting, so this section demonstrates the dispatch
  machinery works at near-ideal speedup.
* ``sim_hotpath`` — ``IONetworkSimulator.step_second`` with the rate
  cache on vs off over held thread triples (the training-loop access
  pattern), asserting throughput values are bit-identical.
* ``fleet_steps`` — the fleet-vectorized ``BatchedSimulator`` stepping
  1/16/64/256 transfers per call vs one scalar event loop, asserting
  bit-identical outputs *and* a ≥5× transfer-steps/s speedup at batch
  ≥ 64 (the one gated speed number: it measures vectorization, a code
  property, not the host).

Run standalone (what the CI ``bench-smoke`` job does)::

    PYTHONPATH=src python benchmarks/bench_parallel.py --quick

Exits 1 if parallel results diverge from serial, the cached simulator
changes any throughput value, or the batched engine misses bit-identity
or its speedup floor; other speed numbers are reported, not gated —
they are hardware statements, not correctness ones.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]


# ------------------------------------------------------------------ sections
def _sleep_task(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def bench_io_bound(*, tasks: int = 8, seconds: float = 0.25, workers: int = 4) -> dict:
    """Sleep-dominated tasks: pool overlap without a core-count ceiling."""
    from repro.parallel import ParallelMap

    items = [seconds] * tasks
    t0 = time.perf_counter()
    serial = ParallelMap(_sleep_task, workers=1).map_values(items)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = ParallelMap(_sleep_task, workers=workers).map_values(items)
    parallel_s = time.perf_counter() - t0
    assert serial == parallel
    return {
        "tasks": tasks,
        "seconds_per_task": seconds,
        "workers": workers,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "ideal_speedup": min(workers, tasks),
    }


def bench_sweep(*, seeds: int = 10, workers: int = 4) -> dict:
    """Real experiment sweep (figure1 × seeds), serial vs process pool."""
    from repro.harness.experiments import experiment_figure1
    from repro.harness.multirun import run_seeded

    seed_list = list(range(seeds))
    t0 = time.perf_counter()
    serial = run_seeded(experiment_figure1, seed_list, workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_seeded(experiment_figure1, seed_list, workers=workers)
    parallel_s = time.perf_counter() - t0
    identical = serial.stats == parallel.stats
    return {
        "experiment": "figure1",
        "seeds": seeds,
        "workers": workers,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "aggregates_identical": identical,
    }


def _make_reference_simulator(config):
    """The pre-optimisation ``step_second`` as a benchmark baseline.

    Replicates the original loop — rates/chunks/queue rebuilt per call,
    heapify, list-indexed accumulators, ``len()``-tracked queue peak — so
    the hot-path section measures before/after rather than just the cache
    toggle within the optimised code.
    """
    import heapq

    from repro.simulator.core import (
        _NETWORK,
        _READ,
        _WRITE,
        IONetworkSimulator,
        StageMetrics,
    )
    from repro.utils.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec

    class ReferenceSimulator(IONetworkSimulator):
        def step_second(self, threads):
            cfg = self.config
            n = self._clamp_threads(threads)
            rates = [
                mbps_to_bytes_per_sec(min(tpt, bw / n_i))
                for tpt, bw, n_i in zip(cfg.tpt, cfg.bandwidth, n)
            ]
            chunks = [
                max(cfg.min_chunk_bytes, rate * cfg.chunk_seconds) for rate in rates
            ]
            horizon, eps, overhead = cfg.duration, cfg.epsilon, cfg.task_overhead
            sender_cap = cfg.sender_buffer_capacity
            receiver_cap = cfg.receiver_buffer_capacity
            sender, receiver = self._sender_usage, self._receiver_usage
            bytes_moved = [0.0, 0.0, 0.0]
            last_finish = [0.0, 0.0, 0.0]
            blocked_retries = 0
            queue_peak = 0
            queue = []
            seq = 0
            for stage in (_READ, _NETWORK, _WRITE):
                for _ in range(n[stage]):
                    queue.append((0.0, seq, stage))
                    seq += 1
            heapq.heapify(queue)
            while queue:
                if len(queue) > queue_peak:
                    queue_peak = len(queue)
                t, _, stage = heapq.heappop(queue)
                amount = 0.0
                if stage == _READ:
                    free = sender_cap - sender
                    if free > 0.0:
                        amount = min(chunks[_READ], free)
                        sender += amount
                elif stage == _NETWORK:
                    free = receiver_cap - receiver
                    if sender > 0.0 and free > 0.0:
                        amount = min(chunks[_NETWORK], sender, free)
                        sender -= amount
                        receiver += amount
                else:
                    if receiver > 0.0:
                        amount = min(chunks[_WRITE], receiver)
                        receiver -= amount
                if amount > 0.0:
                    d_task = amount / rates[stage]
                    bytes_moved[stage] += amount
                    finish = t + d_task
                    if finish > last_finish[stage]:
                        last_finish[stage] = finish
                    t_next = t + d_task + overhead
                else:
                    blocked_retries += 1
                    t_next = t + eps
                if t_next < horizon:
                    heapq.heappush(queue, (t_next, seq, stage))
                    seq += 1
            throughputs = [
                bytes_per_sec_to_mbps(bytes_moved[s] / max(horizon, last_finish[s]))
                for s in range(3)
            ]
            self._sender_usage, self._receiver_usage = sender, receiver
            self._elapsed += horizon
            self.last_blocked_retries = blocked_retries
            self.last_queue_peak = queue_peak
            return StageMetrics(
                throughput_read=throughputs[_READ],
                throughput_network=throughputs[_NETWORK],
                throughput_write=throughputs[_WRITE],
                sender_usage=sender,
                receiver_usage=receiver,
                sender_free=sender_cap - sender,
                receiver_free=receiver_cap - receiver,
                threads=n,
            )

    return ReferenceSimulator(config)


def bench_sim_hotpath(*, steps: int = 2000, held_triples: int = 8) -> dict:
    """step_second: pre-optimisation baseline vs cache off vs cache on."""
    from repro.simulator.config import SimulatorConfig
    from repro.simulator.core import IONetworkSimulator

    config = SimulatorConfig(
        tpt_read=80.0, tpt_network=160.0, tpt_write=200.0,
        bandwidth_read=1000.0, bandwidth_network=1000.0, bandwidth_write=1000.0,
        max_threads=20, label="bench-parallel",
    )
    rng = np.random.default_rng(0)
    base = [tuple(int(v) for v in rng.integers(1, 21, 3)) for _ in range(held_triples)]
    sequence = (base * (steps // held_triples + 1))[:steps]

    def run(make) -> tuple[float, list]:
        sim = make()
        outputs = []
        t0 = time.perf_counter()
        for triple in sequence:
            outputs.append(sim.step_second(triple).throughputs)
        return time.perf_counter() - t0, outputs

    arms = {
        "reference": lambda: _make_reference_simulator(config),
        "cache_off": lambda: IONetworkSimulator(config, cache_rates=False),
        "cache_on": lambda: IONetworkSimulator(config, cache_rates=True),
    }
    for make in arms.values():  # warm-up pass per arm
        run(make)
    walls, outs = {}, {}
    for name, make in arms.items():
        walls[name], outs[name] = run(make)
    return {
        "steps": steps,
        "held_triples": held_triples,
        "reference_wall_s": round(walls["reference"], 3),
        "cache_off_wall_s": round(walls["cache_off"], 3),
        "cache_on_wall_s": round(walls["cache_on"], 3),
        "speedup_vs_reference": round(walls["reference"] / walls["cache_on"], 2),
        "cache_speedup": round(walls["cache_off"] / walls["cache_on"], 2),
        "throughput_identical": outs["reference"] == outs["cache_off"] == outs["cache_on"],
    }


def bench_fleet_steps(*, steps: int = 48, batches: tuple[int, ...] = (1, 16, 64, 256),
                      check_steps: int = 12, min_speedup: float = 5.0) -> dict:
    """Fleet-vectorized stepping: ``BatchedSimulator`` vs N scalar loops.

    The regime is the paper's thread-throttled operating point (per-thread
    bandwidth share above the stage throttle for every stage), where many
    tenants' transfers run the same steady cadence — the fleet/population
    shape the batched engine exists for.  ``fleet_steps_per_s`` counts
    *transfer*-steps per wall second (batch × calls / wall); ``speedup``
    is against one scalar ``IONetworkSimulator`` driven through the same
    regime.  Gated: the largest batch ≥ 64 must clear ``min_speedup``,
    and a lockstep sub-run must be bit-identical to the scalar oracle.
    """
    from repro.simulator.batch import BatchedSimulator
    from repro.simulator.config import SimulatorConfig
    from repro.simulator.core import IONetworkSimulator

    config = SimulatorConfig(
        tpt_read=100.0, tpt_network=100.0, tpt_write=100.0,
        bandwidth_read=3000.0, bandwidth_network=2800.0, bandwidth_write=2600.0,
        max_threads=26, label="bench-fleet",
    )
    caps = (config.sender_buffer_capacity, config.receiver_buffer_capacity)

    def drive_batched(batch: int, n_steps: int) -> float:
        rng = np.random.default_rng(7)
        sim = BatchedSimulator(config, batch)
        sim.step_second(rng.integers(20, 27, (batch, 3)))  # warm-up/alloc
        t0 = time.perf_counter()
        for step in range(n_steps):
            if step % 32 == 0:
                sim.reset(sender_usage=rng.uniform(0.2, 0.3, batch) * caps[0],
                          receiver_usage=rng.uniform(0.2, 0.3, batch) * caps[1])
            sim.step_second(rng.integers(20, 27, (batch, 3)))
        return time.perf_counter() - t0

    def drive_scalar(n_steps: int) -> float:
        rng = np.random.default_rng(7)
        sim = IONetworkSimulator(config, cache_rates=True)
        sim.step_second(tuple(int(v) for v in rng.integers(20, 27, 3)))
        t0 = time.perf_counter()
        for step in range(n_steps):
            if step % 32 == 0:
                sim.reset(sender_usage=float(rng.uniform(0.2, 0.3)) * caps[0],
                          receiver_usage=float(rng.uniform(0.2, 0.3)) * caps[1])
            sim.step_second(tuple(int(v) for v in rng.integers(20, 27, 3)))
        return time.perf_counter() - t0

    scalar_steps = max(4 * steps, 128)
    scalar_wall = drive_scalar(scalar_steps)
    scalar_rate = scalar_steps / scalar_wall

    arms = []
    for batch in batches:
        wall = drive_batched(batch, steps)
        rate = batch * steps / wall
        arms.append({
            "batch": batch,
            "wall_s": round(wall, 4),
            "fleet_steps_per_s": round(rate, 1),
            "speedup": round(rate / scalar_rate, 2),
        })

    # Lockstep identity sub-run: every column vs its own scalar oracle.
    check_batch = 16
    rng = np.random.default_rng(3)
    batched = BatchedSimulator(config, check_batch)
    scalars = [IONetworkSimulator(config, cache_rates=True) for _ in range(check_batch)]
    identical = True
    for _ in range(check_steps):
        threads = rng.integers(20, 27, (check_batch, 3))
        got = batched.step_second(threads)
        for i, sim in enumerate(scalars):
            want = sim.step_second(tuple(int(v) for v in threads[i]))
            identical = identical and got.column(i) == want
    gated = [a["speedup"] for a in arms if a["batch"] >= 64]
    return {
        "steps": steps,
        "scalar_steps_per_s": round(scalar_rate, 1),
        "arms": arms,
        "outputs_identical": identical,
        "min_speedup": min_speedup,
        "best_speedup_batch64plus": max(gated) if gated else 0.0,
        "meets_target": bool(gated and max(gated) >= min_speedup),
    }


# ------------------------------------------------------------------- report
def run_bench(*, quick: bool = False, workers: int = 4,
              out: str | Path | None = None) -> dict:
    from repro.parallel import available_workers

    cores = available_workers()
    if cores < 2:
        # A serial-vs-parallel wall-clock comparison on one core can only
        # show pool overhead (~0.8×), which reads as a regression it isn't.
        # Skip the leg honestly rather than publishing a misleading number.
        sweep: dict = {
            "experiment": "figure1",
            "status": "skipped_single_core",
            "cpu_count": cores,
        }
    else:
        sweep = bench_sweep(seeds=4 if quick else 10, workers=workers)
    report = {
        "bench": "parallel",
        "schema": 1,
        "cpu_count": cores,
        "quick": quick,
        "sweep": sweep,
        "io_bound": bench_io_bound(
            tasks=4 if quick else 8,
            seconds=0.2 if quick else 0.25,
            workers=workers,
        ),
        "sim_hotpath": bench_sim_hotpath(steps=800 if quick else 2000),
        "fleet_steps": bench_fleet_steps(steps=16 if quick else 48),
    }
    sweep_ok = sweep.get("status") == "skipped_single_core" or sweep["aggregates_identical"]
    fleet = report["fleet_steps"]
    report["ok"] = bool(
        sweep_ok
        and report["sim_hotpath"]["throughput_identical"]
        and fleet["outputs_identical"]
        and fleet["meets_target"]
    )
    out = Path(out) if out is not None else REPO_ROOT / "BENCH_parallel.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    report["out"] = str(out)

    from repro.obs.store import record_bench_report

    record_bench_report(report, path=out)
    return report


def test_parallel_bench_quick(tmp_path):
    """Pytest entry: quick-mode correctness gates must hold."""
    report = run_bench(quick=True, workers=2, out=tmp_path / "BENCH_parallel.json")
    assert report["ok"], report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller budgets (CI smoke)")
    parser.add_argument("--workers", type=int, default=4, help="pool size for the sweeps")
    parser.add_argument("--out", default=None, help="report path (default: repo root)")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    report = run_bench(quick=args.quick, workers=args.workers, out=args.out)
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        print("FAIL: results diverged from serial or the batched engine "
              "missed its identity/speedup gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
