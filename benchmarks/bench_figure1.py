"""Fig. 1 — buffer-coupled stage throughputs.

Regenerates the dynamics sketch: over-provisioned read runs at device speed
until the sender buffer fills, then collapses to the network drain rate.
"""

from conftest import run_once

from repro.harness import experiment_figure1


def test_figure1_buffer_coupling(benchmark, fast_flag):
    result = run_once(benchmark, experiment_figure1, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update(s)

    # Balanced triple saturates the 1 Gbps bottleneck.
    assert s["balanced_read_mbps"] > 900.0
    # Over-reading initially runs near device speed...
    assert s["overread_initial_mbps"] > 800.0
    # ...but once the buffer is full, read falls to the (throttled) drain rate.
    assert s["coupling_demonstrated"]
    assert s["overread_after_buffer_full_mbps"] < 0.8 * s["overread_initial_mbps"]
    # And the sender buffer did fill.
    assert s["sender_fill_at_60s"] > 0.9
