"""Fleet control-plane benchmark: throughput, fairness, and determinism.

Three sections, one machine-readable report (``BENCH_fleet.json`` at the
repo root, like the other ``BENCH_*.json`` artifacts):

* ``throughput`` — a quiet (fault-free) fleet of concurrent transfers
  across equal-weight tenants: aggregate verified goodput, scheduling
  rounds, and wall-clock cost per virtual round.  Gate: every admitted
  transfer completes and the capacity invariant holds.
* ``fairness`` — the same fleet under the chaos fault profile: per-tenant
  goodput spread (max/min ratio) for equal weights.  Gate: the ratio stays
  under the soak harness's fairness bound and nothing is left unrecovered.
* ``determinism`` — two same-seed chaos runs: report fingerprints must be
  bit-identical.  Speed numbers are reported, not gated — they are
  hardware statements, not correctness ones.

Run standalone (what the CI ``fleet-soak-smoke`` job complements)::

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick

Exits 1 if any transfer is unrecovered, fairness breaks the bound, or two
same-seed runs diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

FAIRNESS_BOUND = 2.5  # matches FleetSoakConfig.fairness_bound


def _fleet_config(*, tenants: int, seed: int, faults, transfers: int):
    from repro.fleet import FleetConfig, TenantSpec

    return FleetConfig(
        tenants=tuple(
            TenantSpec(f"t{i}", max_concurrency=4) for i in range(tenants)
        ),
        seed=seed,
        quantum=10.0,
        stall_intervals=4,
        admission_limit=max(64, transfers),
        per_tenant_queue=max(32, transfers),
        faults=faults,
    )


def _requests(transfers: int, tenants: int, gigabytes: float):
    from repro.fleet import TransferRequest

    return [
        TransferRequest(tenant=f"t{i % tenants}", gigabytes=gigabytes, name=f"r{i}")
        for i in range(transfers)
    ]


def _run(out_dir: Path, *, transfers: int, tenants: int, gigabytes: float,
         seed: int, faults) -> tuple[dict, float]:
    from repro.fleet import FleetScheduler

    config = _fleet_config(
        tenants=tenants, seed=seed, faults=faults, transfers=transfers
    )
    start = time.perf_counter()
    report = FleetScheduler(
        config, _requests(transfers, tenants, gigabytes), out_dir
    ).run()
    return report, time.perf_counter() - start


# ------------------------------------------------------------------ sections
def bench_throughput(out_dir: Path, *, transfers: int, tenants: int,
                     gigabytes: float) -> dict:
    """Quiet fleet: aggregate goodput and scheduler overhead per round."""
    from repro.fleet import JobFaultProfile

    quiet = JobFaultProfile(stalls=False, corruption=False, crashes=False)
    report, wall = _run(
        out_dir / "quiet", transfers=transfers, tenants=tenants,
        gigabytes=gigabytes, seed=0, faults=quiet,
    )
    completed = sum(1 for j in report["jobs"] if j["state"] == "completed")
    total_bytes = sum(j["bytes_verified"] for j in report["jobs"])
    return {
        "transfers": transfers,
        "tenants": tenants,
        "completed": completed,
        "rounds": report["rounds"],
        "virtual_seconds": report["duration_s"],
        "aggregate_goodput_mbps": round(
            total_bytes * 8 / 1e6 / max(report["duration_s"], 1e-9), 1
        ),
        "wall_seconds": round(wall, 3),
        "wall_ms_per_round": round(wall * 1e3 / max(report["rounds"], 1), 2),
        "all_completed": completed == transfers,
        "capacity_respected": report["invariants"]["capacity_respected"],
    }


def bench_fairness(out_dir: Path, *, transfers: int, tenants: int,
                   gigabytes: float) -> dict:
    """Chaos fleet: equal-weight tenants must end with comparable goodput."""
    from repro.fleet import JobFaultProfile

    chaos = JobFaultProfile(stall_probability=0.6, corruption_probability=0.5)
    report, wall = _run(
        out_dir / "chaos", transfers=transfers, tenants=tenants,
        gigabytes=gigabytes, seed=1, faults=chaos,
    )
    rates = [
        stats["goodput_bytes_per_s"]
        for stats in report["tenants"].values()
        if stats["completed"] > 0
    ]
    ratio = (max(rates) / min(rates)) if rates and min(rates) > 0 else float("inf")
    incidents = sum(len(j["incidents"]) for j in report["jobs"])
    return {
        "transfers": transfers,
        "tenants": tenants,
        "incidents": incidents,
        "breakers_opened": sum(
            j["breaker"]["times_opened"] for j in report["jobs"]
        ),
        "unrecovered_jobs": report["unrecovered_jobs"],
        "goodput_ratio": round(ratio, 3),
        "wall_seconds": round(wall, 3),
        "within_bound": ratio <= FAIRNESS_BOUND,
        "all_recovered": not report["unrecovered_jobs"],
    }


def bench_determinism(out_dir: Path, *, transfers: int, tenants: int,
                      gigabytes: float) -> dict:
    """Two same-seed chaos runs must fingerprint identically."""
    from repro.fleet import JobFaultProfile

    chaos = JobFaultProfile(stall_probability=0.6, corruption_probability=0.5)
    fingerprints = []
    wall = 0.0
    for leg in ("one", "two"):
        report, seconds = _run(
            out_dir / leg, transfers=transfers, tenants=tenants,
            gigabytes=gigabytes, seed=2, faults=chaos,
        )
        fingerprints.append(report["fingerprint"])
        wall += seconds
    return {
        "fingerprints": fingerprints,
        "wall_seconds": round(wall, 3),
        "identical": fingerprints[0] == fingerprints[1],
    }


# ------------------------------------------------------------------- report
def run_bench(*, quick: bool = False, out: str | Path | None = None,
              work_dir: str | Path | None = None) -> dict:
    import tempfile

    transfers = 8 if quick else 32
    tenants = 2 if quick else 4
    gigabytes = 0.1 if quick else 0.25
    base = Path(work_dir) if work_dir is not None else Path(tempfile.mkdtemp())
    report = {
        "bench": "fleet",
        "schema": 1,
        "quick": quick,
        "throughput": bench_throughput(
            base, transfers=transfers, tenants=tenants, gigabytes=gigabytes
        ),
        "fairness": bench_fairness(
            base, transfers=transfers, tenants=tenants, gigabytes=gigabytes
        ),
        "determinism": bench_determinism(
            base, transfers=transfers, tenants=tenants, gigabytes=gigabytes
        ),
    }
    report["ok"] = bool(
        report["throughput"]["all_completed"]
        and report["throughput"]["capacity_respected"]
        and report["fairness"]["within_bound"]
        and report["fairness"]["all_recovered"]
        and report["determinism"]["identical"]
    )
    out = Path(out) if out is not None else REPO_ROOT / "BENCH_fleet.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    report["out"] = str(out)

    from repro.obs.store import record_bench_report

    record_bench_report(report, path=out)
    return report


def test_fleet_bench_quick(tmp_path):
    """Pytest entry: quick-mode correctness gates must hold."""
    report = run_bench(
        quick=True, out=tmp_path / "BENCH_fleet.json", work_dir=tmp_path / "work"
    )
    assert report["ok"], report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller budgets (CI smoke)")
    parser.add_argument("--out", default=None, help="report path (default: repo root)")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    report = run_bench(quick=args.quick, out=args.out)
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        print("FAIL: fleet invariants, fairness, or determinism broke", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
