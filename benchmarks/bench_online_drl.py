"""Offline-trained AutoMDT vs the online-learning DRL predecessor [17].

The paper's abstract claim: AutoMDT "reaches the highest network bandwidth
utilization up to 8X faster ... than state-of-the-art solutions" — the
online DRL predecessor must burn transfer time exploring, the offline-
trained policy does not.
"""

from conftest import run_once

from repro.harness import experiment_online_drl


def test_offline_beats_online_convergence(benchmark, fast_flag):
    result = run_once(benchmark, experiment_online_drl, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # AutoMDT sustains 90% utilization almost immediately.
    assert s["automdt_time_to_90pct_s"] is not None
    assert s["automdt_time_to_90pct_s"] <= 15.0
    # The online learner either takes several times longer or never
    # sustains it within the transfer (paper: up to 8x).
    if s["online_drl_time_to_90pct_s"] is not None:
        assert s["utilization_speedup_x"] >= 3.0
    # Either way, the transfer finishes later.
    assert s["online_drl_completion_s"] > s["automdt_completion_s"]
