"""§IV-B ablation — the utility penalty base k.

Paper: "In a simple sweep across several links (1–25 Gbps), the sweet spot
was just above 1 (specifically 1.02)."  We regenerate the sweep's operating
points and assert the trade-off shape: tiny k buys the last percent of
throughput with many extra threads; large k sacrifices throughput; the
composite score peaks just above 1.
"""

from conftest import run_once

from repro.harness import experiment_k_sweep
from repro.harness.ablations import optimal_threads_for_k
from repro.simulator import SimulatorConfig


def test_k_sweep_sweet_spot(benchmark, fast_flag):
    result = run_once(benchmark, experiment_k_sweep, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # The composite sweet spot is "just above 1": within [1.005, 1.05].
    assert 1.005 <= s["best_k"] <= 1.05


def test_k_monotonics(benchmark):
    """Direct structural checks on the optimal operating points."""
    config = SimulatorConfig(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        max_threads=40,
    )

    def sweep():
        totals, flows = {}, {}
        for k in (1.001, 1.02, 1.2):
            triple, flow, _ = optimal_threads_for_k(config, k)
            totals[k] = sum(triple)
            flows[k] = flow
        return totals, flows

    totals, flows = benchmark(sweep)
    # More aggressive penalty -> fewer threads, possibly less throughput.
    assert totals[1.001] >= totals[1.02] >= totals[1.2]
    assert flows[1.001] >= flows[1.02] >= flows[1.2]
    # k=1.02 keeps nearly all of the bottleneck throughput.
    assert flows[1.02] >= 0.95 * flows[1.001]
