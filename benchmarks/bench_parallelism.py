"""Intra-file parallelism vs the straggler tail (extension experiment).

The related-work knob ([14], [45]): with files ≈ reader count, p=1 leaves
the last files draining at single-stream speed; splitting files into p
segments recovers the bandwidth.  Small files gain nothing (per-segment
overhead dominates).
"""

from conftest import run_once

from repro.harness import experiment_parallelism


def test_parallelism_recovers_straggler_bandwidth(benchmark, fast_flag):
    result = run_once(benchmark, experiment_parallelism, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    by_p = {int(k): v for k, v in s["straggler_mbps_by_p"].items()}
    # Monotone improvement with p on the straggler-prone set.
    assert by_p[1] < by_p[2] < by_p[4] < by_p[8]
    # Substantial recovery (measured ~1.8x).
    assert s["p8_vs_p1_speedup"] >= 1.3
    # Small files gain little or nothing.
    assert not s["small_files_p8_helps"] or (
        s["small_files_p8_mbps"] < s["small_files_p1_mbps"] * 1.15
    )
