"""Simulator-fidelity ablation — the offline-training premise.

Not a paper figure, but the ablation DESIGN.md calls out: the whole
pipeline rests on training in a simulator seeded by a 10-minute probe run.
We train on the measured profile, a ±25% mis-measured one, and a ±60% one,
and deploy all three on the true testbed.
"""

from conftest import run_once

from repro.harness import experiment_sim2real


def test_sim2real_tolerance(benchmark, fast_flag):
    result = run_once(benchmark, experiment_sim2real, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # Mild probe error must not sink the deployment (paper premise):
    # within 50% of the matched agent's completion time.
    assert s["mild_overhead_pct"] < 50.0
    # And mismatch cannot *systematically help*: matched is best or close.
    assert s["mild_overhead_pct"] > -20.0
