"""Fig. 5 — the three bottleneck scenarios, AutoMDT vs Marlin.

Paper: AutoMDT locks onto the bottleneck stage's optimal concurrency within
a few seconds (6 s / 3 s / fast), Marlin takes tens of seconds (29 s / 42 s)
and keeps fluctuating; AutoMDT finishes 68 s / 15 s / 17 s earlier.
"""

from conftest import run_once

from repro.harness import experiment_figure5


def _check_scenario(benchmark, scenario: str, fast: bool):
    result = run_once(benchmark, experiment_figure5, scenario=scenario, fast=fast, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    target_key = next(k for k in s if k.startswith("automdt_reach_"))
    marlin_key = next(k for k in s if k.startswith("marlin_reach_"))

    # AutoMDT identifies the bottleneck within seconds.
    assert s[target_key] is not None, "AutoMDT never reached the optimal level"
    assert s[target_key] <= 12.0
    # Marlin is several times slower to get near the same level (or never).
    if s[marlin_key] is not None:
        assert s[marlin_key] >= 2.0 * s[target_key]
    # AutoMDT finishes earlier.
    assert s["automdt_finishes_earlier_s"] > 0.0
    # And its concurrency trace is more stable than Marlin's.
    assert s["automdt_stability_std"] < s["marlin_stability_std"]
    return s


def test_read_bottleneck(benchmark, fast_flag):
    _check_scenario(benchmark, "read", fast_flag)


def test_network_bottleneck(benchmark, fast_flag):
    _check_scenario(benchmark, "network", fast_flag)


def test_write_bottleneck(benchmark, fast_flag):
    _check_scenario(benchmark, "write", fast_flag)
