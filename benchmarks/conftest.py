"""Shared benchmark configuration.

The figure/table benchmarks run each experiment once per session (heavy,
rounds=1) and assert the paper's *shape-level* claims — who wins, by
roughly what factor — not absolute Mbps.  Offline-training artifacts are
cached under ``.artifacts/`` (see ``repro.harness.artifacts``), so the
first benchmark session trains the needed agents (~2 minutes per scenario
on one core) and later sessions reload them.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


@pytest.fixture(scope="session")
def fast_flag() -> bool:
    """All benches use the scaled-down fast profile (see EXPERIMENTS.md)."""
    return True
