"""Table I — end-to-end transfer speed: Globus vs Marlin vs AutoMDT.

Paper (Mbps): Large 3,652 / 18,067 / 23,988 → AutoMDT = 6.57x Globus,
1.33x Marlin.  Mixed 2,326 / 13,722 / 16,916 → 7.28x / 1.23x.  Shape
assertions: same ordering, Globus far behind, Marlin within ~35% of
AutoMDT, Mixed slower than Large for every tool.
"""

from conftest import run_once

from repro.harness import experiment_table1


def test_table1_end_to_end_speeds(benchmark, fast_flag):
    result = run_once(benchmark, experiment_table1, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    large, mixed = s["large_speed_mbps"], s["mixed_speed_mbps"]

    # Ordering: AutoMDT > Marlin > Globus on both datasets.
    for speeds in (large, mixed):
        assert speeds["AutoMDT"] > speeds["Marlin"] > speeds["Globus"]

    # Globus is severely behind (paper 6.57x / 7.28x; require >= 3x).
    assert s["large_automdt_vs_globus"] >= 3.0
    assert s["mixed_automdt_vs_globus"] >= 3.0

    # Marlin is the close second (paper 1.33x / 1.23x; require 1.05–2.5x).
    assert 1.05 <= s["large_automdt_vs_marlin"] <= 2.5
    assert 1.05 <= s["mixed_automdt_vs_marlin"] <= 2.5

    # The mixed (small-file-heavy) dataset is slower for every tool.
    for tool in ("Globus", "Marlin", "AutoMDT"):
        assert mixed[tool] < large[tool]

    # AutoMDT sustains the lion's share of the 25 Gbps bottleneck.
    assert large["AutoMDT"] > 15000.0
