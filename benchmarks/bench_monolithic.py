"""§III — monolithic over-subscription on a per-stream-throttled link.

A 1 Gbps path throttled to 10 Mbps per stream needs ~100 network streams;
a monolithic tool then also runs ~100 read/write threads where ~10 would
do.  The modular engine matches (or beats) its throughput with a fraction
of the threads.
"""

from conftest import run_once

from repro.harness import experiment_monolithic


def test_monolithic_oversubscription(benchmark, fast_flag):
    result = run_once(benchmark, experiment_monolithic, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # The modular optimum needs ~100 network streams but ~10 I/O threads.
    optimal = s["optimal_threads"]
    assert optimal[1] >= 80
    assert optimal[0] <= 15 and optimal[2] <= 15

    # The monolithic run burns far more threads...
    assert s["monolithic_mean_total_threads"] >= 2 * s["modular_mean_total_threads"]
    # ...without going faster.
    assert s["modular_throughput_mbps"] >= 0.95 * s["monolithic_throughput_mbps"]
    assert s["modular_completion_s"] <= 1.1 * s["monolithic_completion_s"]
