"""Per-file latency on the chunk-granular data plane (beyond the paper).

Checks the distributional claims that motivate the Mixed-dataset results:
the mixed workload has heavier per-file overhead, and the monolithic Globus
configuration underutilizes the link on both workloads.
"""

from conftest import run_once

from repro.harness import experiment_filelevel


def test_filelevel_latency_distributions(benchmark, fast_flag):
    result = run_once(benchmark, experiment_filelevel, fast=fast_flag, seed=0)
    s = result.summary
    benchmark.extra_info.update({k: str(v) for k, v in s.items()})

    # The modular optimum beats Globus's static config on both workloads.
    assert s["large_modular_optimal_mbps"] > s["large_globus_mbps"]
    assert s["mixed_modular_optimal_mbps"] > s["mixed_globus_mbps"]
    # Aggregate ordering: mixed is slower than large for the same tool.
    assert s["mixed_modular_optimal_mbps"] < s["large_modular_optimal_mbps"]
