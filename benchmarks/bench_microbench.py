"""Microbenchmarks of the hot components (classic pytest-benchmark style).

These are not paper results; they track the performance of the pieces the
experiments are built from: the Algorithm-1 simulator step, the testbed
fluid step, a PPO act+update cycle, and a full short transfer.
"""

import numpy as np

from repro.baselines import StaticController
from repro.core.env import SimulatorEnv
from repro.core.ppo import PPOAgent, PPOConfig
from repro.emulator import Testbed, fig5_read_bottleneck
from repro.simulator import IONetworkSimulator, SimulatorConfig
from repro.transfer import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset


def _sim_config():
    return SimulatorConfig(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
    )


def test_simulator_step_second(benchmark):
    sim = IONetworkSimulator(_sim_config())
    benchmark(sim.step_second, (13, 7, 5))


def test_simulator_step_blocked_retries(benchmark):
    """Worst case: starved stages retry on the ε backoff."""
    sim = IONetworkSimulator(_sim_config())
    benchmark(sim.step_second, (1, 30, 30))


def test_testbed_advance(benchmark):
    testbed = Testbed(fig5_read_bottleneck(), rng=0)
    benchmark(testbed.advance, (13, 7, 5))


def test_policy_act(benchmark):
    agent = PPOAgent(config=PPOConfig(), rng=0)
    state = np.zeros(8)
    benchmark(agent.act, state)


def test_ppo_update_cycle(benchmark):
    agent = PPOAgent(config=PPOConfig(), rng=0)
    env = SimulatorEnv(_sim_config(), rng=0)

    def episode_and_update():
        agent.memory.clear()
        state = env.reset()
        for _ in range(10):
            action, log_prob = agent.act(state)
            state, reward, done, _ = env.step(action)
            agent.memory.store(state, action, log_prob, reward)
        agent.memory.end_episode(agent.config.gamma)
        agent.update()

    benchmark(episode_and_update)


def test_short_transfer_end_to_end(benchmark):
    dataset = uniform_dataset(5, 1e9)

    def run():
        engine = ModularTransferEngine(
            Testbed(fig5_read_bottleneck(), rng=0),
            dataset,
            StaticController((13, 7, 5)),
            EngineConfig(max_seconds=300),
        )
        return engine.run()

    result = benchmark(run)
    assert result.completed
