"""Training-throughput microbenchmark: serial vs vectorized rollouts.

Not a paper figure — the performance study of the repo's own training
path.  The vectorized trainer batches B environments per policy forward
(hpc-parallel vectorization) and must (a) be faster per episode and (b)
still converge on the reference scenario.
"""

import numpy as np

from repro.core import PPOAgent, PPOConfig, SimulatorEnv, TrainingConfig, train
from repro.core.vectorized import VectorizedSimulatorEnv, train_vectorized
from repro.simulator import SimulatorConfig


def _config():
    return SimulatorConfig(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        max_threads=30,
    )


EPISODES = 160


def test_serial_training_throughput(benchmark):
    def run():
        env = SimulatorEnv(_config(), rng=0)
        agent = PPOAgent(config=PPOConfig(), rng=0)
        return train(agent, env, TrainingConfig(max_episodes=EPISODES,
                                                stagnation_episodes=EPISODES))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["eps_per_sec"] = round(EPISODES / result.wall_seconds, 1)


def test_vectorized_training_throughput(benchmark):
    def run():
        env = VectorizedSimulatorEnv(_config(), batch_size=8, rng=0)
        agent = PPOAgent(config=PPOConfig(), rng=0)
        return train_vectorized(agent, env, TrainingConfig(max_episodes=EPISODES,
                                                           stagnation_episodes=EPISODES))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["eps_per_sec"] = round(result.episodes_run / result.wall_seconds, 1)
    assert np.isfinite(result.episode_rewards).all()


def test_vectorized_faster_and_still_learns(benchmark):
    """Direct head-to-head at a fixed budget."""
    import time

    def run():
        t0 = time.perf_counter()
        env_s = SimulatorEnv(_config(), rng=0)
        agent_s = PPOAgent(config=PPOConfig(), rng=0)
        serial = train(agent_s, env_s, TrainingConfig(max_episodes=EPISODES,
                                                      stagnation_episodes=EPISODES))
        serial_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        env_v = VectorizedSimulatorEnv(_config(), batch_size=8, rng=0)
        agent_v = PPOAgent(config=PPOConfig(), rng=0)
        vector = train_vectorized(agent_v, env_v, TrainingConfig(max_episodes=EPISODES,
                                                                 stagnation_episodes=EPISODES))
        vector_time = time.perf_counter() - t0
        return serial, serial_time, vector, vector_time

    serial, serial_time, vector, vector_time = benchmark.pedantic(run, rounds=1, iterations=1)
    serial_rate = EPISODES / serial_time
    vector_rate = vector.episodes_run / vector_time
    benchmark.extra_info.update(
        {"serial_eps_per_sec": round(serial_rate, 1),
         "vector_eps_per_sec": round(vector_rate, 1)}
    )
    # Vectorized must beat serial on episode throughput.
    assert vector_rate > serial_rate
    # And both runs produce comparable learning signal at this tiny budget.
    assert vector.episode_rewards[-40:].mean() > serial.episode_rewards[:40].mean() - 1.0
