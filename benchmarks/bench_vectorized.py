"""Training-throughput microbenchmark: serial vs vectorized rollouts.

Not a paper figure — the performance study of the repo's own training
path.  The vectorized trainer batches B environments per policy forward
(hpc-parallel vectorization) and must (a) be faster per episode and (b)
still converge on the reference scenario.

Besides the pytest-benchmark entries, running the module standalone
(``PYTHONPATH=src python benchmarks/bench_vectorized.py [--quick]``)
writes a machine-readable ``BENCH_vectorized.json`` at the repo root,
matching the other ``BENCH_*.json`` artifacts.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import PPOAgent, PPOConfig, SimulatorEnv, TrainingConfig, train
from repro.core.vectorized import VectorizedSimulatorEnv, train_vectorized
from repro.simulator import SimulatorConfig

REPO_ROOT = Path(__file__).resolve().parents[1]


def _config():
    return SimulatorConfig(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        max_threads=30,
    )


EPISODES = 160


def test_serial_training_throughput(benchmark):
    def run():
        env = SimulatorEnv(_config(), rng=0)
        agent = PPOAgent(config=PPOConfig(), rng=0)
        return train(agent, env, TrainingConfig(max_episodes=EPISODES,
                                                stagnation_episodes=EPISODES))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["eps_per_sec"] = round(EPISODES / result.wall_seconds, 1)


def test_vectorized_training_throughput(benchmark):
    def run():
        env = VectorizedSimulatorEnv(_config(), batch_size=8, rng=0)
        agent = PPOAgent(config=PPOConfig(), rng=0)
        return train_vectorized(agent, env, TrainingConfig(max_episodes=EPISODES,
                                                           stagnation_episodes=EPISODES))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["eps_per_sec"] = round(result.episodes_run / result.wall_seconds, 1)
    assert np.isfinite(result.episode_rewards).all()


def test_vectorized_faster_and_still_learns(benchmark):
    """Direct head-to-head at a fixed budget."""
    import time

    def run():
        t0 = time.perf_counter()
        env_s = SimulatorEnv(_config(), rng=0)
        agent_s = PPOAgent(config=PPOConfig(), rng=0)
        serial = train(agent_s, env_s, TrainingConfig(max_episodes=EPISODES,
                                                      stagnation_episodes=EPISODES))
        serial_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        env_v = VectorizedSimulatorEnv(_config(), batch_size=8, rng=0)
        agent_v = PPOAgent(config=PPOConfig(), rng=0)
        vector = train_vectorized(agent_v, env_v, TrainingConfig(max_episodes=EPISODES,
                                                                 stagnation_episodes=EPISODES))
        vector_time = time.perf_counter() - t0
        return serial, serial_time, vector, vector_time

    serial, serial_time, vector, vector_time = benchmark.pedantic(run, rounds=1, iterations=1)
    serial_rate = EPISODES / serial_time
    vector_rate = vector.episodes_run / vector_time
    benchmark.extra_info.update(
        {"serial_eps_per_sec": round(serial_rate, 1),
         "vector_eps_per_sec": round(vector_rate, 1)}
    )
    # Vectorized must beat serial on episode throughput.
    assert vector_rate > serial_rate
    # And both runs produce comparable learning signal at this tiny budget.
    assert vector.episode_rewards[-40:].mean() > serial.episode_rewards[:40].mean() - 1.0


# --------------------------------------------------------------- standalone
def run_bench(*, episodes: int = EPISODES, batch_size: int = 8,
              out: str | Path | None = None) -> dict:
    """Head-to-head serial vs vectorized; writes ``BENCH_vectorized.json``."""
    t0 = time.perf_counter()
    serial = train(
        PPOAgent(config=PPOConfig(), rng=0),
        SimulatorEnv(_config(), rng=0),
        TrainingConfig(max_episodes=episodes, stagnation_episodes=episodes),
    )
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector = train_vectorized(
        PPOAgent(config=PPOConfig(), rng=0),
        VectorizedSimulatorEnv(_config(), batch_size=batch_size, rng=0),
        TrainingConfig(max_episodes=episodes, stagnation_episodes=episodes),
    )
    vector_s = time.perf_counter() - t0

    report = {
        "bench": "vectorized",
        "schema": 1,
        "episodes": episodes,
        "batch_size": batch_size,
        "serial_wall_s": round(serial_s, 3),
        "vectorized_wall_s": round(vector_s, 3),
        "serial_eps_per_sec": round(episodes / serial_s, 1),
        "vectorized_eps_per_sec": round(vector.episodes_run / vector_s, 1),
        "serial_total_steps": serial.total_steps,
        "vectorized_total_steps": vector.total_steps,
        "rewards_finite": bool(np.isfinite(vector.episode_rewards).all()),
    }
    report["speedup"] = round(
        (vector.episodes_run / vector_s) / (episodes / serial_s), 2
    )
    report["ok"] = report["rewards_finite"] and report["speedup"] > 1.0
    out = Path(out) if out is not None else REPO_ROOT / "BENCH_vectorized.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    report["out"] = str(out)

    from repro.obs.store import record_bench_report

    record_bench_report(report, path=out)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller budget (CI smoke)")
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--out", default=None, help="report path (default: repo root)")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    report = run_bench(
        episodes=48 if args.quick else EPISODES,
        batch_size=args.batch_size,
        out=args.out,
    )
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        print("FAIL: vectorized trainer slower than serial or non-finite", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
