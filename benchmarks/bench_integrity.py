"""Verification overhead: supervised transfer with vs without integrity.

The integrity layer (:mod:`repro.transfer.integrity`) promises that
per-chunk checksumming, WAL journaling and final verification cost **≤ 5%**
of transfer-loop CPU time on a clean (fault-free) run — the common case a
production service pays on every transfer.  Same estimator as
``bench_observability``: runs alternate in tight (no-verify, verify) pairs
timed with ``time.process_time``, and the reported overhead is the median
of per-pair CPU-time ratios, which survives noisy shared machines.

Run standalone (what the CI ``bench-smoke`` job does)::

    PYTHONPATH=src python benchmarks/bench_integrity.py --quick

writes ``BENCH_integrity.json`` at the repo root and exits 1 if the
measured overhead exceeds ``--budget`` (default 0.05).  Also collectable
by pytest, where the same measurement runs in quick mode.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.baselines.static import StaticController
from repro.emulator.presets import fig5_read_bottleneck
from repro.emulator.testbed import Testbed
from repro.transfer.engine import EngineConfig, ModularTransferEngine
from repro.transfer.integrity import IntegrityConfig, VerifiedTransfer
from repro.transfer.supervisor import SupervisorConfig, TransferSupervisor
from repro.workloads import large_dataset

REPO_ROOT = Path(__file__).resolve().parent.parent


def _make_supervisor(seed: int = 0) -> TransferSupervisor:
    config = fig5_read_bottleneck()
    engine = ModularTransferEngine(
        Testbed(config, rng=seed),
        large_dataset(total_bytes=200e9),
        StaticController((8, 8, 8)),
        # Budget never binds: the bench measures loop cost, not completion.
        EngineConfig(max_seconds=1e9, probe_noise=0.01, seed=seed),
    )
    return TransferSupervisor(engine, SupervisorConfig(seed=seed))


def _timed_bare() -> tuple[float, float]:
    """(cpu, wall) seconds for a supervised transfer without verification."""
    supervisor = _make_supervisor()
    # Start every timed leg (both arms) from an empty collector so stray
    # generation-2 sweeps of earlier legs' garbage don't land on one arm.
    gc.collect()
    c0, t0 = time.process_time(), time.perf_counter()
    result = supervisor.run()
    assert result.completed
    return time.process_time() - c0, time.perf_counter() - t0


def _timed_verified(run_dir: Path, chunk_size: float) -> tuple[float, float, int, float]:
    """(cpu, wall, chunks, verify MB/s) for the transfer under verification."""
    verified = VerifiedTransfer.for_supervisor(
        _make_supervisor(), run_dir, IntegrityConfig(chunk_size=chunk_size)
    )
    gc.collect()
    c0, t0 = time.process_time(), time.perf_counter()
    result = verified.run()
    cpu, wall = time.process_time() - c0, time.perf_counter() - t0
    verified.journal.close()
    assert result.clean, "clean-path bench run must verify"
    return cpu, wall, result.chunks_total, result.verify_mb_per_s


def measure_overhead(*, pairs: int = 12, chunk_size: float = 4e6) -> dict:
    """Tightly-paired (bare, verified) timing; returns the report dict."""
    with tempfile.TemporaryDirectory(prefix="bench-integrity-") as tmp:
        tmp_dir = Path(tmp)
        _timed_bare()  # warm-up pays one-time costs outside the pairs
        _, _, chunks, _ = _timed_verified(tmp_dir / "warmup", chunk_size)

        ratios: list[float] = []
        off_cpu: list[float] = []
        on_cpu: list[float] = []
        off_wall: list[float] = []
        on_wall: list[float] = []
        verify_rates: list[float] = []
        for i in range(pairs):
            cpu_off, wall_off = _timed_bare()
            run_dir = tmp_dir / f"run{i % 4}"
            journal = run_dir / "journal.jsonl"
            if journal.exists():
                journal.unlink()
            cpu_on, wall_on, _, mb_per_s = _timed_verified(run_dir, chunk_size)
            off_cpu.append(cpu_off)
            on_cpu.append(cpu_on)
            off_wall.append(wall_off)
            on_wall.append(wall_on)
            verify_rates.append(mb_per_s)
            ratios.append(cpu_on / cpu_off)

    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    return {
        "bench": "integrity",
        "schema": 1,
        "pairs": pairs,
        "chunks_per_run": chunks,
        "chunk_size": chunk_size,
        "best_off_cpu_s": round(min(off_cpu), 4),
        "best_on_cpu_s": round(min(on_cpu), 4),
        "best_off_wall_s": round(min(off_wall), 4),
        "best_on_wall_s": round(min(on_wall), 4),
        "overhead": round(median_ratio - 1.0, 5),
        "overhead_best_cpu": round(min(on_cpu) / min(off_cpu) - 1.0, 5),
        # Logical bytes verified per second of verify-sweep wall time —
        # the rate the ``transfer.verify.mb_per_s`` gauge reports.
        "verify_mb_per_s": round(max(verify_rates), 1),
    }


def test_verification_overhead_budget():
    """Pytest entry: quick-mode measurement must meet the 5% budget."""
    report = measure_overhead(pairs=8)
    assert report["overhead"] < 0.05, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer pairs (CI smoke)")
    parser.add_argument("--pairs", type=int, default=None, help="override pair count")
    parser.add_argument(
        "--chunk-size", type=float, default=4e6, help="manifest chunk bytes (config default)"
    )
    parser.add_argument("--budget", type=float, default=0.05, help="max overhead fraction")
    parser.add_argument("--out", default=None, help="report path (default: repo root)")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    pairs = args.pairs if args.pairs is not None else (8 if args.quick else 20)
    report = measure_overhead(pairs=pairs, chunk_size=args.chunk_size)
    report["budget"] = args.budget
    report["within_budget"] = report["overhead"] < args.budget
    out = Path(args.out) if args.out else REPO_ROOT / "BENCH_integrity.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    from repro.obs.store import record_bench_report

    record_bench_report(report, path=out)
    print(json.dumps(report, indent=2))
    if not report["within_budget"]:
        print(
            f"FAIL: verification overhead {report['overhead']:.2%} exceeds "
            f"budget {args.budget:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
