"""Online-adaptation benchmark: detection latency, overhead, rollback, determinism.

Four sections, one machine-readable report (``BENCH_adapt.json`` at the
repo root, like the other ``BENCH_*.json`` artifacts):

* ``detection`` — the seeded drift-soak scenarios (network ramp, read
  step, hard-stall rollback): per-case detection latency after drift
  onset.  Gate: every case detects within the soak's latency bound and
  all soak invariants hold.
* ``overhead`` — per-``propose()`` cost of the adaptive stack versus the
  bare guarded controller on the same observation stream.  The
  ``overhead_ratio`` is reported for ``automdt regress`` (lower is
  better); absolute costs are hardware statements, not gates.
* ``rollback`` — the forced-rollback scenario: the stall watchdog must
  demote to guarded control and the transfer must still complete
  verified with zero unrecovered chunks.
* ``determinism`` — one drift case run twice: case fingerprints must be
  bit-identical.

Run standalone (what the CI ``drift-soak-smoke`` job complements)::

    PYTHONPATH=src python benchmarks/bench_adapt.py --quick

Exits 1 if detection misses its bound, rollback fails to restore
service, or two same-seed runs diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

OVERHEAD_PROPOSALS = 2000


# ------------------------------------------------------------------ sections
def bench_detection(work_dir: Path, *, cases: int) -> dict:
    """Drift-soak scenarios: detection latency within the soak bound."""
    from repro.harness.drift import DriftSoakConfig, run_drift_soak

    config = DriftSoakConfig(cases=cases, determinism_check=False)
    start = time.perf_counter()
    report = run_drift_soak(config, out_dir=work_dir / "soak")
    wall = time.perf_counter() - start
    latencies = [c["detection_latency_s"] for c in report["cases"]]
    return {
        "cases": cases,
        "scenarios": [c["scenario"] for c in report["cases"]],
        "latencies_s": latencies,
        "max_latency_s": report["max_detection_latency_s"],
        "latency_bound_s": config.latency_bound_s,
        "promotions": report["total_promotions"],
        "rollbacks": report["total_rollbacks"],
        "wall_seconds": round(wall, 3),
        "within_bound": bool(
            all(lat is not None and lat <= config.latency_bound_s for lat in latencies)
        ),
        "all_passed": report["all_passed"],
    }


def _observation_stream(count: int):
    """A seeded, drifting observation stream shared by both overhead legs."""
    import numpy as np

    from repro.transfer.engine import Observation

    rng = np.random.default_rng(7)
    stream = []
    bytes_total = 0.0
    for i in range(count):
        scale = 1.0 if i < count // 2 else 0.5  # mid-stream drift keeps the
        goodput = float(1000.0 * scale + rng.normal(0.0, 20.0))  # detectors busy
        bytes_total += max(goodput, 0.0) * 1e6 / 8
        stream.append(
            Observation(
                threads=(13, 7, 5),
                throughputs=(goodput, goodput, goodput),
                sender_free=4e9,
                receiver_free=4e9,
                sender_capacity=8e9,
                receiver_capacity=8e9,
                elapsed=float(i),
                bytes_written_total=bytes_total,
            )
        )
    return stream


def bench_overhead(*, proposals: int) -> dict:
    """Adaptive vs bare-guarded ``propose()`` cost on one observation stream."""
    from repro.adapt import AdaptConfig, AdaptiveController
    from repro.baselines import StaticController
    from repro.transfer.guarded import GuardedController

    stream = _observation_stream(proposals)

    def timed(controller) -> float:
        controller.reset()
        start = time.perf_counter()
        for obs in stream:
            controller.propose(obs)
        return time.perf_counter() - start

    guarded_s = timed(GuardedController(StaticController((13, 7, 5))))
    adaptive_s = timed(
        AdaptiveController(StaticController((13, 7, 5)), AdaptConfig())
    )
    return {
        "proposals": proposals,
        "guarded_us_per_propose": round(guarded_s / proposals * 1e6, 2),
        "adaptive_us_per_propose": round(adaptive_s / proposals * 1e6, 2),
        "overhead_ratio": round(adaptive_s / max(guarded_s, 1e-12), 2),
    }


def bench_rollback(work_dir: Path) -> dict:
    """The forced-rollback scenario: demote to guarded, still complete."""
    from repro.harness.drift import DriftSoakConfig, _run_case

    # Case index 2 is the rollback scenario (ramp + hard read/write stall
    # inside the correction window) under the default root seed.
    start = time.perf_counter()
    record = _run_case(2, DriftSoakConfig(determinism_check=False), str(work_dir))
    return {
        "scenario": record["scenario"],
        "rollbacks": record["rollbacks"],
        "final_state": record["final_state"],
        "supervisor_retries": record["supervisor_retries"],
        "completion_time_s": record["completion_time_s"],
        "wall_seconds": round(time.perf_counter() - start, 3),
        "rolled_back": record["rollbacks"] >= 1,
        "service_restored": bool(
            record["invariants"]["no_data_loss"] and record["invariants"]["restored"]
        ),
    }


def bench_determinism(work_dir: Path) -> dict:
    """Two same-seed runs of one drift case must fingerprint identically."""
    from repro.harness.drift import DriftSoakConfig, _run_once

    config = DriftSoakConfig()
    fingerprints = []
    wall = 0.0
    for leg in ("one", "two"):
        start = time.perf_counter()
        record = _run_once(0, config, work_dir / leg)
        wall += time.perf_counter() - start
        fingerprints.append(record["fingerprint"])
    return {
        "fingerprints": fingerprints,
        "wall_seconds": round(wall, 3),
        "identical": fingerprints[0] == fingerprints[1],
    }


# ------------------------------------------------------------------- report
def run_bench(*, quick: bool = False, out: str | Path | None = None,
              work_dir: str | Path | None = None) -> dict:
    import tempfile

    cases = 3 if quick else 6
    proposals = 500 if quick else OVERHEAD_PROPOSALS
    base = Path(work_dir) if work_dir is not None else Path(tempfile.mkdtemp())
    report = {
        "bench": "adapt",
        "schema": 1,
        "quick": quick,
        "detection": bench_detection(base / "detection", cases=cases),
        "overhead": bench_overhead(proposals=proposals),
        "rollback": bench_rollback(base / "rollback"),
        "determinism": bench_determinism(base / "determinism"),
    }
    report["ok"] = bool(
        report["detection"]["within_bound"]
        and report["detection"]["all_passed"]
        and report["rollback"]["rolled_back"]
        and report["rollback"]["service_restored"]
        and report["determinism"]["identical"]
    )
    out = Path(out) if out is not None else REPO_ROOT / "BENCH_adapt.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    report["out"] = str(out)

    from repro.obs.store import record_bench_report

    record_bench_report(report, path=out)
    return report


def test_adapt_bench_quick(tmp_path):
    """Pytest entry: quick-mode correctness gates must hold."""
    report = run_bench(
        quick=True, out=tmp_path / "BENCH_adapt.json", work_dir=tmp_path / "work"
    )
    assert report["ok"], report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller budgets (CI smoke)")
    parser.add_argument("--out", default=None, help="report path (default: repo root)")
    parser.add_argument("--store", default=None,
                        help="append the report to this results store (also $AUTOMDT_STORE)")
    args = parser.parse_args(argv)
    if args.store:
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    report = run_bench(quick=args.quick, out=args.out)
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        print("FAIL: detection, rollback, or determinism gates broke", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
